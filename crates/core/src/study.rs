//! The study orchestrator: generate → pipeline → collect → finalize,
//! in parallel over days.
//!
//! Parallelism is a work-stealing day queue: workers pull the next day
//! index off a shared atomic cursor, drive it end-to-end through
//! [`process_day_batched`], and submit the day's outcome to a shared
//! ordered reducer. Which worker processes which day is
//! nondeterministic, but results are not — and not merely statistically:
//! days are independent, integer state merges commutatively, and the
//! reducer folds the collectors *in calendar order* (buffering
//! out-of-order arrivals), so even the order-sensitive `f64`
//! accumulators (social-session hours, geolocation midpoints) come out
//! bit-identical at every thread count. Figures diff byte-for-byte
//! across schedules; no float tolerance needed anywhere downstream.
//!
//! Runs are configured through [`StudyBuilder`] (see
//! [`Study::builder`]): thread count, an optional [`RunObserver`] for
//! progress events, per-stage metrics collection, the 2019
//! counterfactual, a seeded [`FaultProfile`], and strict mode.
//!
//! ## Sharded scale-out
//!
//! With [`StudyBuilder::shards`] (or a [`StudyBuilder::mem_budget`],
//! from which a shard count is derived), the population is partitioned
//! by [`campussim::PopulationPlan`] into K deterministic shards and the
//! work queue becomes (shard × day): each shard's sub-campus is built
//! lazily when a worker first touches one of its days and dropped as
//! soon as its last day resolves, so at most a few shards of devices
//! are ever resident. The merge is hierarchical — days fold into a
//! per-shard reducer in calendar order, sealed shards fold into the
//! run in shard-id order — and because every cross-device reduction in
//! the figures is either integer, integer-valued `f64`, or sorted
//! before use, the K > 1 exact path is *byte-identical* to the
//! monolithic K = 1 path at any thread count. For populations whose
//! merged collector itself would not fit, [`StudyBuilder::run_digest`]
//! reduces each sealed shard to a fixed-size [`ShardDigest`] instead
//! (exact headline statistics, ≤2× approximate distribution figures)
//! and never holds more than one shard's collector.
//!
//! ## Fault isolation
//!
//! Each day runs inside its own isolation boundary: a fresh per-day
//! collector and metrics registry under `catch_unwind`, so a day that
//! panics contributes *no* partial state — its collector and registry
//! are simply discarded. The failed day is quarantined on a shared
//! retry queue and re-attempted once by whichever worker drains its
//! main queue first. A recovered day is exact: it submits under its
//! original calendar index, so the ordered reduction cannot tell a
//! retried day from a first-try one ([`StudyCollector::finish_day`]
//! closes all day-scoped state before the collector leaves the
//! boundary). A day that fails both attempts is dropped and
//! recorded in the run's [`DegradedReport`]. Under
//! [`StudyBuilder::strict`] the first failure aborts the run with
//! [`StudyError::DayFailed`] instead — the CI posture.

use crate::error::{panic_message, DayFailure, DegradedReport, StudyError};
use crate::pipeline::{process_day_batched, PipelineOptions, DEFAULT_BATCH_ROWS};
use analysis::collect::{PipelineCtx, StudyCollector};
use analysis::digest::{DigestFigures, ShardDigest};
use analysis::figures::{self, StudySummary};
use analysis::HeadlineStats;
use campussim::{
    CampusSim, FaultProfile, PopulationPlan, Scenario, ServiceDirectory, Shard, SimConfig,
};
use devclass::{audit_sample, AuditReport, DeviceType};
use dhcplog::NormalizeStats;
use geoloc::SubPop;
use lockdown_obs::{
    alloc, trace, AllocScope, Fanout, LivePublisher, MetricsRegistry, MetricsSnapshot,
    NullObserver, RunObserver, SpanRecorder, TelemetryServer,
};
use nettrace::time::{Day, Month, StudyCalendar};
use nettrace::DeviceId;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Poison-tolerant lock: a worker that panicked inside a day boundary
/// cannot leave shared run state unusable (the per-day state it held
/// was private and discarded).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic day-ordered reduction of per-day outcomes.
///
/// Workers submit each completed day under its calendar index; the
/// reducer folds the collectors strictly in index order, buffering
/// out-of-order arrivals until their turn. Integer state (counters,
/// normalization stats, metrics) merges commutatively and is folded the
/// moment it arrives; only the collector — which carries
/// order-sensitive `f64` accumulators (social-session hours,
/// geolocation midpoints) — waits for its slot. The result is
/// bit-identical to a sequential run at any thread count and under any
/// work-stealing schedule, which is what lets the figure diffs in CI be
/// exact byte comparisons instead of `1e-9` tolerances.
struct OrderedReducer {
    state: Mutex<ReduceState>,
}

struct ReduceState {
    /// Next calendar index the collector fold is waiting for.
    next: usize,
    /// Out-of-order arrivals: `Some` to merge when reached, `None` for
    /// a day dropped after failing both attempts (the fold must still
    /// step over its index).
    pending: HashMap<usize, Option<StudyCollector>>,
    collector: StudyCollector,
    stats: NormalizeStats,
    metrics: MetricsSnapshot,
}

impl ReduceState {
    fn offer(&mut self, index: usize, collector: Option<StudyCollector>) {
        if index != self.next {
            self.pending.insert(index, collector);
            return;
        }
        if let Some(c) = collector {
            self.collector.merge(c);
        }
        self.next += 1;
        while let Some(slot) = self.pending.remove(&self.next) {
            if let Some(c) = slot {
                self.collector.merge(c);
            }
            self.next += 1;
        }
    }
}

impl OrderedReducer {
    fn new() -> Self {
        OrderedReducer {
            state: Mutex::new(ReduceState {
                next: 0,
                pending: HashMap::new(),
                collector: StudyCollector::new(),
                stats: NormalizeStats::default(),
                metrics: MetricsSnapshot::default(),
            }),
        }
    }

    /// Fold in a completed day: stats and metrics immediately
    /// (commutative), the collector in calendar order.
    fn submit(&self, index: usize, out: DayOutcome) {
        let mut s = lock(&self.state);
        s.stats += out.stats;
        s.metrics.merge(&out.metrics);
        s.offer(index, Some(out.collector));
    }

    /// Record that `index` will never arrive (dropped after two failed
    /// attempts), so the ordered fold can step over it.
    fn skip(&self, index: usize) {
        lock(&self.state).offer(index, None);
    }

    /// Finish the reduction. Any indices still pending (possible only
    /// on an aborted run, whose result is discarded anyway) are folded
    /// in index order as a safety net.
    fn into_parts(self) -> (StudyCollector, NormalizeStats, MetricsSnapshot) {
        let mut s = self
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut rest: Vec<usize> = s.pending.keys().copied().collect();
        rest.sort_unstable();
        for k in rest {
            if let Some(Some(c)) = s.pending.remove(&k) {
                s.collector.merge(c);
            }
        }
        (s.collector, s.stats, s.metrics)
    }
}

/// One drain's worth of shared inputs: which simulation, which day
/// queue, which reducer collects the outcomes, which fault profile,
/// and the stage label failures carry.
struct DrainPlan<'a> {
    sim: &'a CampusSim,
    days: &'a [Day],
    cursor: &'a AtomicUsize,
    /// Quarantined first-attempt failures, each carrying the day's
    /// calendar index so a recovery can submit under it.
    retry: &'a Mutex<Vec<(usize, DayFailure)>>,
    reducer: &'a OrderedReducer,
    fault: Option<&'a FaultProfile>,
    stage: &'static str,
    batch_rows: usize,
    /// Attribute allocation deltas to days and stages (`mem.*`
    /// metrics). Set only when the run's builder asked for it *and*
    /// the process-global tracking allocator probe succeeded.
    track_memory: bool,
}

/// Run-wide failure bookkeeping shared by every worker.
struct RunShared {
    degraded: Mutex<DegradedReport>,
    abort: AtomicBool,
    first_err: Mutex<Option<DayFailure>>,
    strict: bool,
    /// Days currently inside the isolation boundary, across all
    /// workers — sampled into the `study.days_inflight` gauge.
    inflight: AtomicU64,
}

impl RunShared {
    fn new(strict: bool) -> Self {
        RunShared {
            degraded: Mutex::new(DegradedReport::default()),
            abort: AtomicBool::new(false),
            first_err: Mutex::new(None),
            strict,
            inflight: AtomicU64::new(0),
        }
    }

    /// Record a run-fatal failure (strict mode) and tell every worker
    /// to stop pulling work.
    fn record_fatal(&self, failure: DayFailure) {
        let mut slot = lock(&self.first_err);
        if slot.is_none() {
            *slot = Some(failure);
        }
        self.abort.store(true, Ordering::Relaxed);
    }
}

/// The per-day state a successful attempt yields for merging.
struct DayOutcome {
    collector: StudyCollector,
    stats: NormalizeStats,
    metrics: MetricsSnapshot,
    /// Wall duration of the attempt (the `study.day_duration_ns`
    /// sample, also published through [`RunObserver::day_metrics`]).
    duration_ns: u64,
}

/// Everything one day attempt needs besides the day itself: which sim
/// to stream from (the whole campus, or one shard's sub-campus), the
/// fault profile, and the throughput/observability knobs. Both the
/// monolithic [`DrainPlan`] and the sharded plan build one of these per
/// attempt, so [`try_day`] is the single isolation boundary for every
/// execution mode.
struct DayJob<'a> {
    sim: &'a CampusSim,
    fault: Option<&'a FaultProfile>,
    batch_rows: usize,
    track_memory: bool,
    /// Population shard this day belongs to (0 on the monolithic path).
    shard: u32,
}

/// Run one day inside the isolation boundary: a fresh collector and
/// registry, under `catch_unwind`. On panic the day's partial state is
/// discarded and the rendered payload is returned as the error.
#[allow(clippy::too_many_arguments)]
fn try_day(
    job: &DayJob<'_>,
    ctx: &PipelineCtx,
    day: Day,
    worker: usize,
    attempt: u32,
    observer: &dyn RunObserver,
    collect_metrics: bool,
    shared: &RunShared,
    span_name: &'static str,
) -> Result<DayOutcome, String> {
    let registry = collect_metrics.then(MetricsRegistry::new);
    let mut collector = StudyCollector::new();
    // Sample run-wide concurrency into the day's registry: gauges merge
    // by max, so the final value is the run's peak days-in-flight.
    let inflight = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(reg) = &registry {
        reg.gauge("study.days_inflight").set_max(inflight);
    }
    // The day-level allocation scope opens before the isolation
    // boundary and closes after it on the same thread (the panic is
    // caught, so `end` always runs), covering everything the day
    // allocates — generation, stages, collection.
    let mem_scope = (job.track_memory && registry.is_some()).then(AllocScope::begin);
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let day_span = trace::span(span_name)
            .attr("day", u64::from(day.0))
            .attr("worker", worker as u64)
            .attr("attempt", u64::from(attempt));
        if job.shard != 0 {
            day_span.set_attr("shard", u64::from(job.shard));
        }
        let opts = PipelineOptions::new(
            ctx,
            job.sim.directory().table(),
            day,
            job.sim.config().anon_key,
        )
        .observer(observer)
        .metrics_opt(registry.as_ref())
        .fault(job.fault)
        .attempt(attempt)
        .worker(worker)
        .shard(job.shard)
        .batch_rows(job.batch_rows)
        .track_memory(job.track_memory);
        let day_stats = process_day_batched(opts, &mut collector, job.sim);
        day_span.set_attr("flows", day_stats.attributed);
        day_stats
    }));
    let duration_ns = t0.elapsed().as_nanos() as u64;
    shared.inflight.fetch_sub(1, Ordering::Relaxed);
    let mem_delta = mem_scope.map(AllocScope::end);
    match result {
        Ok(stats) => {
            if let Some(reg) = &registry {
                reg.histogram("study.day_duration_ns").record(duration_ns);
                if let Some(d) = mem_delta {
                    reg.counter("mem.day.alloc_bytes").add(d.alloc_bytes);
                    reg.counter("mem.day.freed_bytes").add(d.freed_bytes);
                    reg.counter("mem.day.allocs").add(d.allocs);
                    reg.counter("mem.day.deallocs").add(d.deallocs);
                    reg.gauge("mem.day.peak_net_bytes")
                        .set_max(d.peak_net_bytes);
                }
            }
            Ok(DayOutcome {
                collector,
                stats,
                metrics: registry.map(|r| r.snapshot()).unwrap_or_default(),
                duration_ns,
            })
        }
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

/// One worker's share: pull days off the plan's cursor until the queue
/// is dry, then adopt quarantined days off the retry queue (each
/// retried exactly once, possibly pushed there by a different worker).
/// Every worker that pushes to the retry queue also drains it
/// afterwards, so no quarantined day is ever orphaned. Outcomes flow
/// straight into the plan's [`OrderedReducer`] under the day's calendar
/// index; the worker keeps no per-worker accumulation.
fn drain_days(
    plan: &DrainPlan<'_>,
    ctx: &PipelineCtx,
    worker: usize,
    observer: &dyn RunObserver,
    collect_metrics: bool,
    shared: &RunShared,
) {
    let job = DayJob {
        sim: plan.sim,
        fault: plan.fault,
        batch_rows: plan.batch_rows,
        track_memory: plan.track_memory,
        shard: 0,
    };
    // First pass over the shared day queue.
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let i = plan.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&day) = plan.days.get(i) else { break };
        observer.day_started(worker, day);
        match try_day(
            &job,
            ctx,
            day,
            worker,
            0,
            observer,
            collect_metrics,
            shared,
            "day",
        ) {
            Ok(out) => {
                observer.day_metrics(worker, day, out.duration_ns, &out.metrics);
                observer.day_finished(worker, day, out.stats.attributed);
                plan.reducer.submit(i, out);
            }
            Err(error) => {
                observer.day_failed(worker, day, 0, &error);
                let failure = DayFailure {
                    day: day.0,
                    stage: plan.stage.to_string(),
                    error,
                    attempt: 0,
                };
                if shared.strict {
                    shared.record_fatal(failure);
                    break;
                }
                lock(plan.retry).push((i, failure));
            }
        }
    }
    // Retry pass: one fresh attempt per quarantined day. A recovered
    // day submits under its original calendar index, so the ordered
    // fold cannot tell it from a first-try success.
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let Some((index, first)) = lock(plan.retry).pop() else {
            break;
        };
        let day = Day(first.day);
        observer.day_started(worker, day);
        match try_day(
            &job,
            ctx,
            day,
            worker,
            1,
            observer,
            collect_metrics,
            shared,
            "day.retry",
        ) {
            Ok(out) => {
                observer.day_metrics(worker, day, out.duration_ns, &out.metrics);
                observer.day_finished(worker, day, out.stats.attributed);
                plan.reducer.submit(index, out);
                lock(&shared.degraded).recovered.push(first);
            }
            Err(error) => {
                observer.day_failed(worker, day, 1, &error);
                plan.reducer.skip(index);
                lock(&shared.degraded).failed.push(DayFailure {
                    day: day.0,
                    stage: plan.stage.to_string(),
                    error,
                    attempt: 1,
                });
            }
        }
    }
    observer.worker_idle(worker);
}

/// How a run's population was partitioned and merged — surfaced in the
/// manifest's `sharding` section and the reports.
#[derive(Debug, Clone)]
pub struct ShardingReport {
    /// Number of population shards (1 = monolithic).
    pub shards: u32,
    /// `"exact"` (full collectors merged) or `"digest"` (fixed-size
    /// per-shard digests merged).
    pub mode: &'static str,
    /// Merge hierarchy depth: 1 = days → run; 2 = days → shard → run;
    /// 3 = days → shard → digest → run.
    pub merge_depth: u32,
    /// Peak net day-allocation bytes observed per shard, in shard-id
    /// order (zeros when memory tracking was off).
    pub per_shard_peak_bytes: Vec<u64>,
    /// Flows attributed per shard over the run, in shard-id order
    /// (empty for monolithic runs, which have no per-shard seam).
    pub per_shard_flows: Vec<u64>,
    /// Flow payload bytes collected per shard, in shard-id order
    /// (zeros when the run did not collect metrics; empty monolithic).
    pub per_shard_bytes: Vec<u64>,
    /// Worker wall time spent on each shard's days, nanoseconds, in
    /// shard-id order (empty for monolithic runs).
    pub per_shard_wall_ns: Vec<u64>,
}

impl ShardingReport {
    /// The monolithic single-shard report.
    fn monolithic(peak_net_bytes: u64) -> Self {
        ShardingReport {
            shards: 1,
            mode: "exact",
            merge_depth: 1,
            per_shard_peak_bytes: vec![peak_net_bytes],
            per_shard_flows: Vec::new(),
            per_shard_bytes: Vec::new(),
            per_shard_wall_ns: Vec::new(),
        }
    }
}

/// Shard-ordered digest accumulation (the digest-mode run sink).
/// Mirrors [`ReduceState`]: digests fold strictly in shard-id order,
/// buffering out-of-order seals — belt and braces, since every digest
/// field is additive anyway.
struct DigestAcc {
    next: u32,
    pending: BTreeMap<u32, Option<ShardDigest>>,
    merged: ShardDigest,
    stats: NormalizeStats,
    metrics: MetricsSnapshot,
}

impl DigestAcc {
    fn new() -> Self {
        DigestAcc {
            next: 0,
            pending: BTreeMap::new(),
            merged: ShardDigest::empty(),
            stats: NormalizeStats::default(),
            metrics: MetricsSnapshot::default(),
        }
    }

    fn offer(&mut self, shard: u32, digest: Option<ShardDigest>) {
        if shard != self.next {
            self.pending.insert(shard, digest);
            return;
        }
        if let Some(d) = digest {
            self.merged.merge(&d);
        }
        self.next += 1;
        while let Some(slot) = self.pending.remove(&self.next) {
            if let Some(d) = slot {
                self.merged.merge(&d);
            }
            self.next += 1;
        }
    }

    fn into_parts(mut self) -> (ShardDigest, NormalizeStats, MetricsSnapshot) {
        let rest: Vec<u32> = self.pending.keys().copied().collect();
        for k in rest {
            if let Some(Some(d)) = self.pending.remove(&k) {
                self.merged.merge(&d);
            }
        }
        (self.merged, self.stats, self.metrics)
    }
}

/// Where sealed shards go: the exact path reuses [`OrderedReducer`]
/// keyed by shard id (full collectors, byte-identical to monolithic);
/// the digest path folds fixed-size [`ShardDigest`]s instead, so the
/// run never holds more than one shard's collector.
enum ShardSink {
    Exact(Box<OrderedReducer>),
    Digest(Box<Mutex<DigestAcc>>),
}

/// One shard's slot in the sharded work queue: the lazily-built
/// sub-campus, its own day-ordered reducer, and a countdown of
/// unresolved days. When the countdown hits zero the slot is sealed —
/// reduced into the run sink — and the sub-campus dropped, bounding
/// resident memory to the shards currently in flight.
struct ShardSlot {
    shard: Shard,
    sim: Mutex<Option<Arc<CampusSim>>>,
    reducer: Mutex<Option<OrderedReducer>>,
    remaining: AtomicUsize,
    peak_bytes: AtomicU64,
    /// Load tallies across the shard's resolved days, feeding the
    /// manifest `sharding` section and `/progress` shard rows.
    flows: AtomicU64,
    bytes: AtomicU64,
    wall_ns: AtomicU64,
}

/// The sharded analogue of [`DrainPlan`]: one global cursor over the
/// (shard × day) grid, shard-major so a shard's days cluster in time
/// and its sub-campus can be dropped early.
struct ShardedPlan<'a> {
    cfg: &'a SimConfig,
    directory: Arc<ServiceDirectory>,
    slots: Vec<ShardSlot>,
    days: &'a [Day],
    cursor: AtomicUsize,
    retry: Mutex<Vec<(usize, DayFailure)>>,
    sink: ShardSink,
    fault: Option<&'a FaultProfile>,
    stage: &'static str,
    batch_rows: usize,
    track_memory: bool,
}

/// Fresh queue slots for a shard set, each owing `days` day outcomes.
fn shard_slots(shards: Vec<Shard>, days: usize) -> Vec<ShardSlot> {
    shards
        .into_iter()
        .map(|shard| ShardSlot {
            shard,
            sim: Mutex::new(None),
            reducer: Mutex::new(Some(OrderedReducer::new())),
            remaining: AtomicUsize::new(days),
            peak_bytes: AtomicU64::new(0),
            flows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
        })
        .collect()
}

impl<'a> ShardedPlan<'a> {
    /// The shard's sub-campus, built on first touch. Building happens
    /// under the slot's lock so concurrent first-touchers build once;
    /// the population realization replays the exact per-student RNG
    /// ranges of the monolithic build, so this sim emits bit-identical
    /// traffic for its devices.
    fn shard_sim(&self, slot: &ShardSlot) -> Arc<CampusSim> {
        let mut guard = lock(&slot.sim);
        if let Some(sim) = guard.as_ref() {
            return Arc::clone(sim);
        }
        let span = trace::span("build_shard").attr("shard", u64::from(slot.shard.id()));
        let population = slot.shard.build();
        let sim = Arc::new(CampusSim::for_shard(
            self.cfg.clone(),
            population,
            Arc::clone(&self.directory),
        ));
        drop(span);
        *guard = Some(Arc::clone(&sim));
        sim
    }

    /// Mark one of the slot's days fully resolved (success, recovered,
    /// or dropped); seal the shard when it was the last one.
    fn day_resolved(&self, slot: &ShardSlot) {
        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.seal(slot);
        }
    }

    /// Seal a drained shard: close its day-ordered reduction, record
    /// its peak, hand the result to the run sink, and drop its
    /// sub-campus.
    fn seal(&self, slot: &ShardSlot) {
        let _span = trace::span("seal_shard").attr("shard", u64::from(slot.shard.id()));
        let Some(reducer) = lock(&slot.reducer).take() else {
            return;
        };
        let (collector, stats, metrics) = reducer.into_parts();
        slot.peak_bytes
            .store(metrics.gauge("mem.day.peak_net_bytes"), Ordering::Relaxed);
        match &self.sink {
            ShardSink::Exact(run) => run.submit(
                slot.shard.id() as usize,
                DayOutcome {
                    collector,
                    stats,
                    metrics,
                    duration_ns: 0,
                },
            ),
            ShardSink::Digest(acc) => {
                // Classification and segmentation are per-device and a
                // device's whole history lives in its one shard, so the
                // per-shard summary equals the device's slice of the
                // run-level one.
                let summary = StudySummary::finalize(&collector);
                let digest = ShardDigest::extract(&collector, &summary);
                drop(collector);
                let mut a = lock(acc);
                a.stats += stats;
                a.metrics.merge(&metrics);
                a.offer(slot.shard.id(), Some(digest));
            }
        }
        *lock(&slot.sim) = None;
    }

    /// Record that a shard day was dropped after both attempts, so the
    /// shard's ordered fold (and its seal countdown) can step over it.
    fn skip_day(&self, slot: &ShardSlot, day_index: usize) {
        if let Some(r) = lock(&slot.reducer).as_ref() {
            r.skip(day_index);
        }
        self.day_resolved(slot);
    }

    fn submit_day(&self, slot: &ShardSlot, day_index: usize, out: DayOutcome) {
        // Fold the day into the shard's load tallies before the outcome
        // moves into the reducer. Bytes stay zero when metrics are off,
        // exactly like `peak_bytes` when memory tracking is off.
        slot.flows
            .fetch_add(out.stats.attributed, Ordering::Relaxed);
        slot.bytes.fetch_add(
            out.metrics.counter("pipeline.bytes_collected"),
            Ordering::Relaxed,
        );
        slot.wall_ns.fetch_add(out.duration_ns, Ordering::Relaxed);
        if let Some(r) = lock(&slot.reducer).as_ref() {
            r.submit(day_index, out);
        }
        self.day_resolved(slot);
    }
}

/// One worker's share of a sharded run: pull (shard, day) cells off the
/// global cursor, then adopt quarantined cells off the retry queue —
/// the same discipline as [`drain_days`], lifted to the grid.
fn drain_shards(
    plan: &ShardedPlan<'_>,
    ctx: &PipelineCtx,
    worker: usize,
    observer: &dyn RunObserver,
    collect_metrics: bool,
    shared: &RunShared,
) {
    let nd = plan.days.len();
    let total = plan.slots.len() * nd;
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let i = plan.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            break;
        }
        let (slot, day_index) = (&plan.slots[i / nd], i % nd);
        let day = plan.days[day_index];
        let sim = plan.shard_sim(slot);
        observer.day_started(worker, day);
        let job = DayJob {
            sim: &sim,
            fault: plan.fault,
            batch_rows: plan.batch_rows,
            track_memory: plan.track_memory,
            shard: slot.shard.id(),
        };
        match try_day(
            &job,
            ctx,
            day,
            worker,
            0,
            observer,
            collect_metrics,
            shared,
            "day",
        ) {
            Ok(out) => {
                observer.day_metrics(worker, day, out.duration_ns, &out.metrics);
                observer.day_finished(worker, day, out.stats.attributed);
                observer.shard_day_finished(
                    slot.shard.id(),
                    day,
                    out.stats.attributed,
                    out.duration_ns,
                );
                plan.submit_day(slot, day_index, out);
            }
            Err(error) => {
                observer.day_failed(worker, day, 0, &error);
                let failure = DayFailure {
                    day: day.0,
                    stage: plan.stage.to_string(),
                    error,
                    attempt: 0,
                };
                if shared.strict {
                    shared.record_fatal(failure);
                    break;
                }
                lock(&plan.retry).push((i, failure));
            }
        }
    }
    // Retry pass: identical contract to the monolithic one — a
    // recovered cell submits under its original day index inside its
    // shard, so the hierarchical fold cannot tell it from a first-try
    // success.
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let Some((i, first)) = lock(&plan.retry).pop() else {
            break;
        };
        let (slot, day_index) = (&plan.slots[i / nd], i % nd);
        let day = plan.days[day_index];
        let sim = plan.shard_sim(slot);
        observer.day_started(worker, day);
        let job = DayJob {
            sim: &sim,
            fault: plan.fault,
            batch_rows: plan.batch_rows,
            track_memory: plan.track_memory,
            shard: slot.shard.id(),
        };
        match try_day(
            &job,
            ctx,
            day,
            worker,
            1,
            observer,
            collect_metrics,
            shared,
            "day.retry",
        ) {
            Ok(out) => {
                observer.day_metrics(worker, day, out.duration_ns, &out.metrics);
                observer.day_finished(worker, day, out.stats.attributed);
                observer.shard_day_finished(
                    slot.shard.id(),
                    day,
                    out.stats.attributed,
                    out.duration_ns,
                );
                plan.submit_day(slot, day_index, out);
                lock(&shared.degraded).recovered.push(first);
            }
            Err(error) => {
                observer.day_failed(worker, day, 1, &error);
                plan.skip_day(slot, day_index);
                lock(&shared.degraded).failed.push(DayFailure {
                    day: day.0,
                    stage: plan.stage.to_string(),
                    error,
                    attempt: 1,
                });
            }
        }
    }
    observer.worker_idle(worker);
}

/// A completed study run.
pub struct Study {
    /// The synthetic campus it ran against.
    pub sim: CampusSim,
    /// Everything collected by the pipeline.
    pub collector: StudyCollector,
    /// Classified, segmented device universe.
    pub summary: StudySummary,
    /// Aggregate normalization statistics.
    pub norm_stats: NormalizeStats,
    metrics: MetricsSnapshot,
    degraded: DegradedReport,
    sharding: ShardingReport,
    /// Lazily materialized ground-truth views (built once on first
    /// request, then borrowed — callers used to pay a full-population
    /// clone per call).
    truth_types: OnceLock<HashMap<DeviceId, DeviceType>>,
    truth_subpop: OnceLock<HashMap<DeviceId, SubPop>>,
}

impl Study {
    /// Configure a run: `Study::builder(cfg).threads(8).run()?`.
    pub fn builder(cfg: SimConfig) -> StudyBuilder {
        StudyBuilder::new(cfg)
    }

    fn assemble(
        sim: CampusSim,
        collector: StudyCollector,
        summary: StudySummary,
        norm_stats: NormalizeStats,
        metrics: MetricsSnapshot,
        degraded: DegradedReport,
        sharding: ShardingReport,
    ) -> Study {
        Study {
            sim,
            collector,
            summary,
            norm_stats,
            metrics,
            degraded,
            sharding,
            truth_types: OnceLock::new(),
            truth_subpop: OnceLock::new(),
        }
    }

    /// Run-level per-stage counters (sessions generated, flows
    /// assembled, leases normalized, labels resolved, …), folded
    /// together from the per-worker registries. Empty if the run was
    /// built with [`StudyBuilder::metrics`]`(false)`.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Which days failed and had to be retried (or were dropped). Empty
    /// on a clean run; see [`DegradedReport`].
    pub fn degraded(&self) -> &DegradedReport {
        &self.degraded
    }

    /// How the run's population was partitioned and merged (shard
    /// count, mode, merge depth, per-shard peaks).
    pub fn sharding(&self) -> &ShardingReport {
        &self.sharding
    }

    /// The paper's headline statistics for this run.
    pub fn headline(&self) -> HeadlineStats {
        figures::headline_stats(&self.collector, &self.summary)
    }

    /// The resolved scenario this study ran (the config's scenario;
    /// for a counterfactual run, the scenario's no-event twin).
    pub fn scenario(&self) -> &Scenario {
        self.sim.scenario()
    }

    /// Ground-truth device types from the generator (for validation).
    /// Built once on first call and cached; the returned map is
    /// borrowed from the study, so repeated audits no longer clone the
    /// full device table.
    pub fn ground_truth_types(&self) -> &HashMap<DeviceId, DeviceType> {
        self.truth_types.get_or_init(|| {
            self.sim
                .population()
                .devices
                .iter()
                .map(|d| (d.id, d.kind.true_type()))
                .collect()
        })
    }

    /// Ground-truth sub-populations, cached and borrowed like
    /// [`Study::ground_truth_types`].
    pub fn ground_truth_subpop(&self) -> &HashMap<DeviceId, SubPop> {
        self.truth_subpop.get_or_init(|| {
            self.sim
                .population()
                .devices
                .iter()
                .map(|d| (d.id, self.sim.population().student(d.owner).subpop))
                .collect()
        })
    }

    /// Reproduce the paper's manual 100-device classification audit
    /// against generator ground truth (§3: 84 correct / 2 affirmative
    /// errors / 14 conservative unknowns).
    pub fn classification_audit(&self, sample: usize) -> AuditReport {
        audit_sample(
            &self.summary.device_types,
            self.ground_truth_types(),
            sample,
            self.sim.config().seed,
        )
    }

    /// Mean bytes per active device-day over April+May, for post-shutdown
    /// users. Per-device normalization makes the 2019 comparison
    /// meaningful: the 2019 campus had no shutdown, so its population is
    /// several times larger, and raw totals would compare populations,
    /// not behaviour.
    pub fn aprmay_daily_traffic(&self) -> f64 {
        self.aprmay_daily_traffic_over(&self.summary.post_shutdown)
    }

    /// [`Study::aprmay_daily_traffic`] restricted to an explicit device
    /// set — used to compare the *same cohort* against the counterfactual
    /// run (where nobody departed, so its own post-shutdown set is the
    /// whole campus with a different device mix).
    pub fn aprmay_daily_traffic_over(&self, devices: &std::collections::HashSet<DeviceId>) -> f64 {
        let mut bytes = 0u64;
        let mut device_days = 0u64;
        for &dev in devices {
            for m in [Month::Apr, Month::May] {
                bytes += self.collector.volume.month_total(dev, m);
                for d in m.first_day().0..m.first_day().0 + m.num_days() {
                    if self.collector.volume.active_on(dev, Day(d)) {
                        device_days += 1;
                    }
                }
            }
        }
        if device_days == 0 {
            0.0
        } else {
            bytes as f64 / device_days as f64
        }
    }
}

/// Configures and launches a study run.
///
/// ```no_run
/// use campussim::SimConfig;
/// use lockdown_core::Study;
/// use lockdown_obs::TextProgress;
///
/// # fn main() -> Result<(), lockdown_core::StudyError> {
/// let run = Study::builder(SimConfig::at_scale(0.05))
///     .threads(8)
///     .observer(TextProgress::stderr())
///     .with_counterfactual()
///     .run()?;
/// println!("growth vs 2019: {:?}", run.growth_vs_2019());
/// # Ok(())
/// # }
/// ```
pub struct StudyBuilder {
    cfg: SimConfig,
    threads: usize,
    observer: Box<dyn RunObserver>,
    counterfactual: bool,
    collect_metrics: bool,
    trace: Option<SpanRecorder>,
    fault: Option<FaultProfile>,
    strict: bool,
    live: Option<LivePublisher>,
    serve_addr: Option<String>,
    batch_rows: usize,
    track_memory: bool,
    shards: u32,
    mem_budget: Option<u64>,
}

impl StudyBuilder {
    /// Defaults: sequential, silent observer, metrics on, no tracing,
    /// no counterfactual, no fault injection, graceful (non-strict)
    /// degradation, monolithic (single-shard) population.
    pub fn new(cfg: SimConfig) -> Self {
        StudyBuilder {
            cfg,
            threads: 1,
            observer: Box::new(NullObserver),
            counterfactual: false,
            collect_metrics: true,
            trace: None,
            fault: None,
            strict: false,
            live: None,
            serve_addr: None,
            batch_rows: DEFAULT_BATCH_ROWS,
            track_memory: false,
            shards: 0,
            mem_budget: None,
        }
    }

    /// Partition the population into exactly `k` deterministic shards
    /// (0, the default, means "derive": from [`StudyBuilder::mem_budget`]
    /// if one is set, else 1). `k = 1` is the monolithic path,
    /// bit-identical to not calling this at all; `k > 1` drains the
    /// (shard × day) grid with lazily built, eagerly dropped
    /// sub-campuses and hierarchically merges shard reductions in
    /// shard-id order — still byte-identical figures at any `k` and any
    /// thread count.
    pub fn shards(mut self, k: u32) -> Self {
        self.shards = k;
        self
    }

    /// Derive the shard count from a peak-memory budget (bytes) using
    /// the population plan's per-device footprint estimate, instead of
    /// fixing it with [`StudyBuilder::shards`]. An explicit non-zero
    /// `shards` wins over the budget.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Resolve the effective shard partition. Requires a validated
    /// config (the plan scans scenario-driven population knobs).
    fn effective_shards(&self) -> Vec<Shard> {
        let plan = PopulationPlan::new(&self.cfg);
        if self.shards > 0 {
            plan.shards(self.shards)
        } else if let Some(budget) = self.mem_budget {
            plan.auto_shards(budget)
        } else {
            plan.shards(1)
        }
    }

    /// Track allocation during the run (default off): day- and
    /// stage-attributed `mem.*` counters and peak gauges land in the
    /// run's metrics, and run-wide totals (peak bytes, live bytes,
    /// alloc/dealloc/realloc counts) are recorded at finalize.
    ///
    /// Requires the binary to have registered
    /// [`lockdown_obs::TrackingAlloc`] as its `#[global_allocator]`
    /// (like `repro` does); otherwise the enable probe fails and the
    /// run silently proceeds untracked. Also requires
    /// [`StudyBuilder::metrics`] to stay on — with metrics off there is
    /// nowhere to record. Tracking is observation-only: figures,
    /// non-`mem.*` metrics, and config hashes are byte-identical with
    /// it on or off.
    pub fn track_memory(mut self, on: bool) -> Self {
        self.track_memory = on;
        self
    }

    /// Fan days out over `n` workers (clamped to at least 1). Days are
    /// handed out through a shared work-stealing cursor, so a slow day
    /// (e.g. peak-occupancy February) never leaves the other workers
    /// idle the way static round-robin chunking did. Bit-deterministic
    /// regardless of thread count: each day runs independently and the
    /// shared reducer folds day collectors in calendar order, so even
    /// `f64` accumulation order is schedule-independent.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Rows per flow batch on the hot path (clamped to at least 1;
    /// default [`DEFAULT_BATCH_ROWS`]). Purely a throughput knob:
    /// results are bit-identical at every batch size — see
    /// `tests/stream_vs_batch.rs`.
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// Receive progress events ([`RunObserver`]) during the run.
    pub fn observer(mut self, observer: impl RunObserver + 'static) -> Self {
        self.observer = Box::new(observer);
        self
    }

    /// Toggle per-stage metrics collection (on by default; the off
    /// path costs one branch per record).
    pub fn metrics(mut self, on: bool) -> Self {
        self.collect_metrics = on;
        self
    }

    /// Record a span timeline of the run into `recorder`: each worker
    /// gets a lane with nested `worker` → `day` → `stream_day` spans
    /// plus per-stage busy aggregates, and the orchestration phases
    /// (`build_sim`, `finalize`) land on the [`trace::MAIN_LANE`].
    /// After the run, `recorder.finish()` yields the
    /// [`lockdown_obs::Trace`] for export. Off by default — and when
    /// off, the hot path pays a single thread-local check per day, not
    /// per record.
    pub fn trace(mut self, recorder: &SpanRecorder) -> Self {
        self.trace = Some(recorder.clone());
        self
    }

    /// Inject seeded, deterministic faults into the main study's record
    /// stream (the counterfactual always runs clean, so the 2019
    /// baseline stays a controlled comparison). Dropped and repaired
    /// records are accounted under the `pipeline.errors.*` and
    /// `assembler.malformed.*` counters; an injected worker panic
    /// exercises the quarantine-and-retry machinery.
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// Fail fast: abort the run with [`StudyError::DayFailed`] on the
    /// first day failure instead of quarantining and retrying. The CI
    /// posture — a fault that would silently degrade a nightly run
    /// becomes a red build.
    pub fn strict(mut self, on: bool) -> Self {
        self.strict = on;
        self
    }

    /// Feed live run state into `publisher` (a cheap clone of shared
    /// state): day boundaries, periodic mid-day snapshots, and — when
    /// the run completes — the exact final merged metrics. Use this
    /// when the caller owns the [`TelemetryServer`] (e.g. to learn the
    /// bound port before the run starts); [`StudyBuilder::serve`] is
    /// the one-call convenience that does both.
    pub fn live(mut self, publisher: &LivePublisher) -> Self {
        self.live = Some(publisher.clone());
        self
    }

    /// Serve live telemetry (`/metrics`, `/healthz`, `/progress`) on
    /// `addr` for the duration of the run. The bound server rides in
    /// [`StudyRun::telemetry`], so with `"127.0.0.1:0"` the real port
    /// is only discoverable after the run — bind a
    /// [`TelemetryServer`] yourself and use [`StudyBuilder::live`] if
    /// you need it earlier. Publication is observation-only: results
    /// are bit-identical with or without a server attached.
    pub fn serve(mut self, addr: impl Into<String>) -> Self {
        self.serve_addr = Some(addr.into());
        self
    }

    /// Run a specific [`Scenario`] instead of the config's (the
    /// built-in `paper-2020` by default): replaces `cfg.scenario`.
    /// Combine with [`StudyBuilder::with_counterfactual`] to also run
    /// the scenario's no-event twin.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.cfg.scenario = scenario;
        self
    }

    /// Run every scenario in `scenarios` as its own full study — same
    /// seed, scale, thread count, batch size, strictness, and metrics
    /// toggle for every cell — and collect the per-cell results for
    /// cross-scenario comparison. Cells run sequentially; each cell
    /// fans its days out over this builder's worker pool exactly like
    /// [`StudyBuilder::run`], so the work-stealing runner and ordered
    /// reducer keep every cell bit-deterministic.
    ///
    /// Observers, tracing, fault injection, and live telemetry are
    /// per-run concerns and are *not* carried into matrix cells.
    ///
    /// Errors on the first cell that fails; completed cells are
    /// dropped (scenario runs are cheap relative to debugging a
    /// half-reported matrix).
    pub fn run_matrix(self, scenarios: &[Scenario]) -> Result<MatrixRun, StudyError> {
        let StudyBuilder {
            cfg,
            threads,
            collect_metrics,
            strict,
            batch_rows,
            track_memory,
            shards,
            mem_budget,
            ..
        } = self;
        let mut cells = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let mut cell_cfg = cfg.clone();
            cell_cfg.scenario = scenario.clone();
            let mut cell = StudyBuilder::new(cell_cfg)
                .threads(threads)
                .batch_rows(batch_rows)
                .metrics(collect_metrics)
                .strict(strict)
                .track_memory(track_memory)
                .shards(shards);
            if let Some(budget) = mem_budget {
                cell = cell.mem_budget(budget);
            }
            let run = cell.run()?;
            cells.push(MatrixCell {
                scenario_name: scenario.name.clone(),
                scenario_hash_hex: scenario.content_hash_hex(),
                run,
            });
        }
        Ok(MatrixRun { cells })
    }

    /// Also run the 2019 counterfactual (same seed and population
    /// scale, no pandemic) and report Apr/May traffic growth against
    /// it; the paper reports +53%. Both runs share one pool of scoped
    /// workers: each worker drains the study's day queue, then rolls
    /// straight into the counterfactual's, so no threads are torn down
    /// and respawned between the runs and the pool stays busy across
    /// the boundary.
    pub fn with_counterfactual(mut self) -> Self {
        self.counterfactual = true;
        self
    }

    /// Execute the configured run.
    ///
    /// Errors when the configuration fails validation, when any day
    /// fails under [`StudyBuilder::strict`], or when a worker dies
    /// outside the per-day isolation boundary. A day that fails both
    /// its attempts in non-strict mode does *not* error: the run
    /// completes without that day and records it in
    /// [`Study::degraded`].
    pub fn run(self) -> Result<StudyRun, StudyError> {
        self.cfg.validate()?;
        // Only resolve a partition when sharding was actually asked
        // for: the plan's counting pass is an O(population) RNG replay
        // the monolithic path should not pay.
        if self.shards > 1 || (self.shards == 0 && self.mem_budget.is_some()) {
            let shards = self.effective_shards();
            if shards.len() > 1 {
                return match self.run_partitioned(shards, false)? {
                    PartitionedRun::Exact(run) => Ok(*run),
                    PartitionedRun::Digest(_) => unreachable!("exact mode requested"),
                };
            }
        }
        self.run_monolithic()
    }

    /// Sharded digest run: partition the population (per
    /// [`StudyBuilder::shards`] / [`StudyBuilder::mem_budget`]), drain
    /// the (shard × day) grid, and reduce every sealed shard to a
    /// fixed-size [`ShardDigest`] so the run never holds more than one
    /// shard's collector. Headline statistics are exact at any shard
    /// count; distribution figures are ≤2× approximations (see
    /// [`analysis::digest`]). The counterfactual is not run in digest
    /// mode (its cohort comparison needs the exact run-level
    /// collector), and there is no classification audit — the full
    /// device table is never materialized.
    pub fn run_digest(self) -> Result<DigestStudy, StudyError> {
        self.cfg.validate()?;
        let shards = self.effective_shards();
        match self.run_partitioned(shards, true)? {
            PartitionedRun::Digest(d) => Ok(*d),
            PartitionedRun::Exact(_) => unreachable!("digest mode requested"),
        }
    }

    /// The classic single-population path, byte-for-byte the historic
    /// behaviour (shard dimension absent from spans and fault streams).
    fn run_monolithic(self) -> Result<StudyRun, StudyError> {
        let StudyBuilder {
            cfg,
            threads,
            observer,
            counterfactual,
            collect_metrics,
            trace: trace_rec,
            fault,
            strict,
            live,
            serve_addr,
            batch_rows,
            track_memory,
            ..
        } = self;
        cfg.validate()?;
        let fault = fault.filter(|p| !p.is_noop());
        // Enable allocation tracking before the simulation is built so
        // the population and directory allocations count toward the
        // run's peak. `enable` probes for a registered tracker; without
        // one the run proceeds untracked.
        let mem_on = track_memory && collect_metrics && alloc::enable();
        let mem_base = mem_on.then(alloc::stats);
        // A serve address implies a publisher even if the caller didn't
        // attach one explicitly.
        let live = live.or_else(|| serve_addr.as_ref().map(|_| LivePublisher::new()));
        let telemetry = match (&live, serve_addr) {
            (Some(live), Some(addr)) => Some(
                TelemetryServer::bind(&addr, live.clone())
                    .map_err(|source| StudyError::Serve { addr, source })?,
            ),
            _ => None,
        };
        // The caller's observer and the live publisher both hear every
        // event; without a publisher the original box rides unchanged.
        let observer: Box<dyn RunObserver> = match &live {
            Some(l) => Box::new(Fanout(l.clone(), observer)),
            None => observer,
        };
        // If a recorder is configured and the calling thread is not
        // already recording (e.g. the CLI installed its own main lane),
        // give the orchestration phases a lane of their own. No span
        // stays open across the worker phase, so on a sequential run
        // the top-level spans of all lanes tile the timeline instead of
        // double-counting it.
        let _orchestration_lane = match &trace_rec {
            Some(rec) if !trace::enabled() => Some(rec.install(trace::MAIN_LANE, "orchestrator")),
            _ => None,
        };
        let cf_cfg = counterfactual.then(|| Scenario::counterfactual_of(&cfg));
        let (sim, cf_sim, ctx) = {
            let _span = trace::span("build_sim");
            (
                CampusSim::new(cfg),
                cf_cfg.map(CampusSim::new),
                PipelineCtx::study(),
            )
        };
        let days: Vec<Day> = StudyCalendar::days().collect();
        if let Some(live) = &live {
            let passes = 1 + u64::from(cf_sim.is_some());
            live.set_days_total(days.len() as u64 * passes);
            live.set_mem_tracking(mem_on);
        }
        let cursor = AtomicUsize::new(0);
        let cf_cursor = AtomicUsize::new(0);
        let retry = Mutex::new(Vec::new());
        let cf_retry = Mutex::new(Vec::new());
        let shared = RunShared::new(strict);
        let reducer = OrderedReducer::new();
        let cf_reducer = OrderedReducer::new();

        let plan = DrainPlan {
            sim: &sim,
            days: &days,
            cursor: &cursor,
            retry: &retry,
            reducer: &reducer,
            fault: fault.as_ref(),
            stage: "pipeline",
            batch_rows,
            track_memory: mem_on,
        };
        let cf_plan = cf_sim.as_ref().map(|cf_sim| DrainPlan {
            sim: cf_sim,
            days: &days,
            cursor: &cf_cursor,
            retry: &cf_retry,
            reducer: &cf_reducer,
            fault: None,
            stage: "counterfactual",
            batch_rows,
            track_memory: mem_on,
        });

        let trace_rec = trace_rec.as_ref();
        let worker = |w: usize| {
            let _lane = trace_rec.map(|rec| rec.install(w as u32, &format!("worker {w}")));
            let worker_span = trace::span("worker").attr("worker", w as u64);
            {
                let _span = trace::span("drain.study");
                drain_days(&plan, &ctx, w, observer.as_ref(), collect_metrics, &shared);
            }
            if let Some(p) = cf_plan.as_ref() {
                let _span = trace::span("drain.counterfactual");
                drain_days(p, &ctx, w, observer.as_ref(), collect_metrics, &shared);
            }
            drop(worker_span);
            Instant::now()
        };

        let results: Vec<Instant> = if threads == 1 {
            vec![worker(0)]
        } else {
            let worker = &worker;
            let joined: Vec<_> = std::thread::scope(|s| {
                // The eager collect is the fork: without it the lazy
                // spawn/join chain would run the workers one at a time.
                #[allow(clippy::needless_collect)]
                let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || worker(w))).collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut out = Vec::with_capacity(joined.len());
            for j in joined {
                match j {
                    Ok(y) => out.push(y),
                    // Day-level failures are caught inside `try_day`;
                    // reaching here means the worker died outside the
                    // isolation boundary.
                    Err(payload) => {
                        return Err(StudyError::WorkerPanicked {
                            detail: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            out
        };

        if let Some(failure) = lock(&shared.first_err).take() {
            return Err(StudyError::DayFailed(failure));
        }

        let _finalize_span = trace::span("finalize");

        // Tail idle per worker: the gap between a worker running out of
        // work and the last worker finishing (the join barrier). The
        // observer's `worker_idle` event marks *that* a worker went
        // idle; this histogram records *how long* it sat idle.
        let idle_registry = collect_metrics.then(MetricsRegistry::new);
        if let Some(reg) = &idle_registry {
            if let Some(latest) = results.iter().copied().max() {
                let idle = reg.histogram("study.worker_idle_ns");
                for done in &results {
                    idle.record(latest.duration_since(*done).as_nanos() as u64);
                }
            }
        }

        // Run-wide memory accounting: counters as the delta since the
        // run's base snapshot (so back-to-back runs in one process stay
        // comparable), peak/live as the tracker's absolute values.
        if let (Some(reg), Some(base)) = (&idle_registry, mem_base.as_ref()) {
            let now = alloc::stats();
            let d = now.since(base);
            reg.counter("mem.alloc_bytes").add(d.alloc_bytes);
            reg.counter("mem.freed_bytes").add(d.freed_bytes);
            reg.counter("mem.allocs").add(d.allocs);
            reg.counter("mem.deallocs").add(d.deallocs);
            reg.counter("mem.reallocs").add(d.reallocs);
            reg.gauge("mem.peak_bytes").set_max(now.peak_bytes);
            reg.gauge("mem.live_bytes").set_max(now.live_bytes);
        }

        let mut degraded = std::mem::take(&mut *lock(&shared.degraded));
        degraded.sort();

        let (collector, norm_stats, mut metrics) = reducer.into_parts();
        if let Some(reg) = &idle_registry {
            metrics.merge(&reg.snapshot());
        }
        let summary = StudySummary::finalize(&collector);
        let sharding = ShardingReport::monolithic(metrics.gauge("mem.day.peak_net_bytes"));
        let study = Study::assemble(
            sim, collector, summary, norm_stats, metrics, degraded, sharding,
        );

        let counterfactual = cf_sim.map(|cf_sim| {
            let (cf_collector, cf_norm_stats, cf_metrics) = cf_reducer.into_parts();
            let cf_summary = StudySummary::finalize(&cf_collector);
            let cf_sharding =
                ShardingReport::monolithic(cf_metrics.gauge("mem.day.peak_net_bytes"));
            let cf = Study::assemble(
                cf_sim,
                cf_collector,
                cf_summary,
                cf_norm_stats,
                cf_metrics,
                DegradedReport::default(),
                cf_sharding,
            );
            // Compare the *same cohort*: the 2020 post-shutdown users,
            // whose devices exist identically in the counterfactual
            // population (same seed, unconditional population draws).
            let cohort = &study.summary.post_shutdown;
            let cf_traffic = cf.aprmay_daily_traffic_over(cohort);
            let growth_vs_2019 = if cf_traffic > 0.0 {
                study.aprmay_daily_traffic_over(cohort) / cf_traffic - 1.0
            } else {
                0.0
            };
            Counterfactual {
                study: cf,
                growth_vs_2019,
            }
        });

        // Hand the live view the exact final merged metrics (a
        // superset of everything published mid-run, so the view stays
        // monotone) and mark the run done for `/healthz`.
        if let Some(live) = &live {
            let mut final_metrics = study.metrics.clone();
            if let Some(cf) = &counterfactual {
                final_metrics.merge(&cf.study.metrics);
            }
            live.finish(&final_metrics);
        }

        Ok(StudyRun {
            study,
            counterfactual,
            telemetry,
        })
    }

    /// The sharded runner behind both the K > 1 exact path and digest
    /// mode: one (shard × day) grid, lazily built and eagerly dropped
    /// sub-campuses, hierarchical merge through the chosen sink.
    fn run_partitioned(
        self,
        shards: Vec<Shard>,
        digest: bool,
    ) -> Result<PartitionedRun, StudyError> {
        let StudyBuilder {
            cfg,
            threads,
            observer,
            counterfactual,
            collect_metrics,
            trace: trace_rec,
            fault,
            strict,
            live,
            serve_addr,
            batch_rows,
            track_memory,
            ..
        } = self;
        let k = shards.len() as u32;
        let fault = fault.filter(|p| !p.is_noop());
        let mem_on = track_memory && collect_metrics && alloc::enable();
        let mem_base = mem_on.then(alloc::stats);
        let live = live.or_else(|| serve_addr.as_ref().map(|_| LivePublisher::new()));
        let telemetry = match (&live, serve_addr) {
            (Some(live), Some(addr)) => Some(
                TelemetryServer::bind(&addr, live.clone())
                    .map_err(|source| StudyError::Serve { addr, source })?,
            ),
            _ => None,
        };
        let observer: Box<dyn RunObserver> = match &live {
            Some(l) => Box::new(Fanout(l.clone(), observer)),
            None => observer,
        };
        let _orchestration_lane = match &trace_rec {
            Some(rec) if !trace::enabled() => Some(rec.install(trace::MAIN_LANE, "orchestrator")),
            _ => None,
        };
        // Digest mode streams the counterfactual through its own digest
        // sink: no run-level collector, so the growth comparison is the
        // aggregate ratio (each run over its own active post-shutdown
        // devices) rather than the exact path's cohort-matched one.
        let cf_cfg = counterfactual.then(|| Scenario::counterfactual_of(&cfg));
        // One service directory for every shard of both runs — the
        // synthetic Internet is population-independent world state.
        let (directory, ctx) = {
            let _span = trace::span("build_sim");
            (Arc::new(ServiceDirectory::build()), PipelineCtx::study())
        };
        let days: Vec<Day> = StudyCalendar::days().collect();
        if let Some(live) = &live {
            let passes = 1 + u64::from(cf_cfg.is_some());
            live.set_days_total(days.len() as u64 * u64::from(k) * passes);
            live.set_mem_tracking(mem_on);
            live.set_shards(k);
        }
        let shared = RunShared::new(strict);
        let sink = if digest {
            ShardSink::Digest(Box::new(Mutex::new(DigestAcc::new())))
        } else {
            ShardSink::Exact(Box::new(OrderedReducer::new()))
        };
        let plan = ShardedPlan {
            cfg: &cfg,
            directory: Arc::clone(&directory),
            slots: shard_slots(shards, days.len()),
            days: &days,
            cursor: AtomicUsize::new(0),
            retry: Mutex::new(Vec::new()),
            sink,
            fault: fault.as_ref(),
            stage: "pipeline",
            batch_rows,
            track_memory: mem_on,
        };
        let cf_plan = cf_cfg.as_ref().map(|cf_cfg| {
            // The counterfactual always runs clean and mirrors the main
            // run's sink: exact (cohort-matched comparison) or digest
            // (aggregate comparison, fixed-size memory).
            ShardedPlan {
                cfg: cf_cfg,
                directory: Arc::clone(&directory),
                slots: shard_slots(PopulationPlan::new(cf_cfg).shards(k), days.len()),
                days: &days,
                cursor: AtomicUsize::new(0),
                retry: Mutex::new(Vec::new()),
                sink: if digest {
                    ShardSink::Digest(Box::new(Mutex::new(DigestAcc::new())))
                } else {
                    ShardSink::Exact(Box::new(OrderedReducer::new()))
                },
                fault: None,
                stage: "counterfactual",
                batch_rows,
                track_memory: mem_on,
            }
        });

        let trace_rec = trace_rec.as_ref();
        let worker = |w: usize| {
            let _lane = trace_rec.map(|rec| rec.install(w as u32, &format!("worker {w}")));
            let worker_span = trace::span("worker").attr("worker", w as u64);
            {
                let _span = trace::span("drain.study");
                drain_shards(&plan, &ctx, w, observer.as_ref(), collect_metrics, &shared);
            }
            if let Some(p) = cf_plan.as_ref() {
                let _span = trace::span("drain.counterfactual");
                drain_shards(p, &ctx, w, observer.as_ref(), collect_metrics, &shared);
            }
            drop(worker_span);
            Instant::now()
        };

        let results: Vec<Instant> = if threads == 1 {
            vec![worker(0)]
        } else {
            let worker = &worker;
            let joined: Vec<_> = std::thread::scope(|s| {
                #[allow(clippy::needless_collect)]
                let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || worker(w))).collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut out = Vec::with_capacity(joined.len());
            for j in joined {
                match j {
                    Ok(y) => out.push(y),
                    Err(payload) => {
                        return Err(StudyError::WorkerPanicked {
                            detail: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            out
        };

        if let Some(failure) = lock(&shared.first_err).take() {
            return Err(StudyError::DayFailed(failure));
        }

        let _finalize_span = trace::span("finalize");

        let idle_registry = collect_metrics.then(MetricsRegistry::new);
        if let Some(reg) = &idle_registry {
            if let Some(latest) = results.iter().copied().max() {
                let idle = reg.histogram("study.worker_idle_ns");
                for done in &results {
                    idle.record(latest.duration_since(*done).as_nanos() as u64);
                }
            }
        }
        if let (Some(reg), Some(base)) = (&idle_registry, mem_base.as_ref()) {
            let now = alloc::stats();
            let d = now.since(base);
            reg.counter("mem.alloc_bytes").add(d.alloc_bytes);
            reg.counter("mem.freed_bytes").add(d.freed_bytes);
            reg.counter("mem.allocs").add(d.allocs);
            reg.counter("mem.deallocs").add(d.deallocs);
            reg.counter("mem.reallocs").add(d.reallocs);
            reg.gauge("mem.peak_bytes").set_max(now.peak_bytes);
            reg.gauge("mem.live_bytes").set_max(now.live_bytes);
        }

        let mut degraded = std::mem::take(&mut *lock(&shared.degraded));
        degraded.sort();

        let sharding_report =
            |slots: &[ShardSlot], mode: &'static str, merge_depth: u32| -> ShardingReport {
                ShardingReport {
                    shards: k,
                    mode,
                    merge_depth,
                    per_shard_peak_bytes: slots
                        .iter()
                        .map(|s| s.peak_bytes.load(Ordering::Relaxed))
                        .collect(),
                    per_shard_flows: slots
                        .iter()
                        .map(|s| s.flows.load(Ordering::Relaxed))
                        .collect(),
                    per_shard_bytes: slots
                        .iter()
                        .map(|s| s.bytes.load(Ordering::Relaxed))
                        .collect(),
                    per_shard_wall_ns: slots
                        .iter()
                        .map(|s| s.wall_ns.load(Ordering::Relaxed))
                        .collect(),
                }
            };
        let ShardedPlan { sink, slots, .. } = plan;

        match sink {
            ShardSink::Exact(reducer) => {
                let (collector, norm_stats, mut metrics) = reducer.into_parts();
                if let Some(reg) = &idle_registry {
                    metrics.merge(&reg.snapshot());
                }
                let summary = StudySummary::finalize(&collector);
                let sharding = sharding_report(&slots, "exact", 2);
                // Full-population twin for ground truth and audits —
                // built after the drain so it never adds to the run's
                // sharded working set. Byte-identical to the shard
                // union (the plan's compatibility guarantee).
                let sim = {
                    let _span = trace::span("build_sim");
                    CampusSim::new(cfg.clone())
                };
                let study = Study::assemble(
                    sim, collector, summary, norm_stats, metrics, degraded, sharding,
                );

                let counterfactual = cf_plan.map(|p| {
                    let cf_cfg = p.cfg.clone();
                    let ShardedPlan { sink, slots, .. } = p;
                    let ShardSink::Exact(cf_reducer) = sink else {
                        unreachable!("counterfactual mirrors the exact main sink");
                    };
                    let (cf_collector, cf_norm_stats, cf_metrics) = cf_reducer.into_parts();
                    let cf_summary = StudySummary::finalize(&cf_collector);
                    let cf_sharding = sharding_report(&slots, "exact", 2);
                    let cf_sim = {
                        let _span = trace::span("build_sim");
                        CampusSim::new(cf_cfg)
                    };
                    let cf = Study::assemble(
                        cf_sim,
                        cf_collector,
                        cf_summary,
                        cf_norm_stats,
                        cf_metrics,
                        DegradedReport::default(),
                        cf_sharding,
                    );
                    let cohort = &study.summary.post_shutdown;
                    let cf_traffic = cf.aprmay_daily_traffic_over(cohort);
                    let growth_vs_2019 = if cf_traffic > 0.0 {
                        study.aprmay_daily_traffic_over(cohort) / cf_traffic - 1.0
                    } else {
                        0.0
                    };
                    Counterfactual {
                        study: cf,
                        growth_vs_2019,
                    }
                });

                if let Some(live) = &live {
                    let mut final_metrics = study.metrics.clone();
                    if let Some(cf) = &counterfactual {
                        final_metrics.merge(&cf.study.metrics);
                    }
                    live.finish(&final_metrics);
                }

                Ok(PartitionedRun::Exact(Box::new(StudyRun {
                    study,
                    counterfactual,
                    telemetry,
                })))
            }
            ShardSink::Digest(acc) => {
                let (merged, norm_stats, mut metrics) = acc
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .into_parts();
                if let Some(reg) = &idle_registry {
                    metrics.merge(&reg.snapshot());
                }
                let sharding = sharding_report(&slots, "digest", 3);
                // The streamed counterfactual: same digest contract as
                // the main pass, compared in aggregate (no run-level
                // collector to cohort-match against).
                let counterfactual = cf_plan.map(|p| {
                    let ShardedPlan { sink, .. } = p;
                    let ShardSink::Digest(cf_acc) = sink else {
                        unreachable!("counterfactual mirrors the digest main sink");
                    };
                    let (cf_merged, _cf_stats, cf_metrics) = cf_acc
                        .into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .into_parts();
                    let cf_traffic = cf_merged.aprmay_daily_traffic();
                    let aggregate_growth_vs_2019 = if cf_traffic > 0.0 {
                        merged.aprmay_daily_traffic() / cf_traffic - 1.0
                    } else {
                        0.0
                    };
                    (
                        DigestCounterfactual {
                            figures: cf_merged.render(),
                            resident_devices: cf_merged.resident_devices(),
                            aggregate_growth_vs_2019,
                        },
                        cf_metrics,
                    )
                });
                if let Some(live) = &live {
                    let mut final_metrics = metrics.clone();
                    if let Some((_, cf_metrics)) = &counterfactual {
                        final_metrics.merge(cf_metrics);
                    }
                    live.finish(&final_metrics);
                }
                let counterfactual = counterfactual.map(|(cf, _)| cf);
                Ok(PartitionedRun::Digest(Box::new(DigestStudy {
                    cfg,
                    figures: merged.render(),
                    resident_devices: merged.resident_devices(),
                    norm_stats,
                    metrics,
                    degraded,
                    sharding,
                    counterfactual,
                    telemetry,
                })))
            }
        }
    }
}

/// What [`StudyBuilder::run_partitioned`] yields, depending on sink.
enum PartitionedRun {
    Exact(Box<StudyRun>),
    Digest(Box<DigestStudy>),
}

/// A completed sharded digest run: the paper's figures and headline
/// statistics without a run-level collector or device table. Headline
/// statistics are exact; distribution figures are ≤2× approximations
/// (see [`analysis::digest`] for the precise contract). The
/// counterfactual, when requested, streams through its own digest and
/// is compared in aggregate (see [`DigestCounterfactual`]). No
/// classification audit.
pub struct DigestStudy {
    /// The configuration the run executed.
    pub cfg: SimConfig,
    /// Rendered figures plus exact headline statistics.
    pub figures: DigestFigures,
    /// Residents (devices passing the 14-day filter) across all shards.
    pub resident_devices: usize,
    /// Aggregate normalization statistics (exact).
    pub norm_stats: NormalizeStats,
    metrics: MetricsSnapshot,
    degraded: DegradedReport,
    sharding: ShardingReport,
    /// The streamed 2019 counterfactual, if
    /// [`StudyBuilder::with_counterfactual`] was requested.
    pub counterfactual: Option<DigestCounterfactual>,
    /// The live telemetry server, still serving the run's final state,
    /// if [`StudyBuilder::serve`] was requested.
    pub telemetry: Option<TelemetryServer>,
}

/// The digest-mode 2019 counterfactual: the no-pandemic twin's rendered
/// figures under the same error contract as the main digest pass.
///
/// Unlike the exact path's [`Counterfactual`], the growth comparison is
/// an *aggregate* ratio — each run's Apr/May traffic per active
/// post-shutdown device-day over its own population — because neither
/// side keeps a run-level collector to cohort-match against.
pub struct DigestCounterfactual {
    /// Rendered counterfactual figures plus exact headline statistics.
    pub figures: DigestFigures,
    /// Counterfactual residents (devices passing the 14-day filter).
    pub resident_devices: usize,
    /// Apr/May per-device-day traffic of the 2020 run over the 2019
    /// twin, minus 1. Aggregate, not cohort-matched: expect it near but
    /// not equal to the exact path's `growth_vs_2019`.
    pub aggregate_growth_vs_2019: f64,
}

impl DigestStudy {
    /// The paper's headline statistics — exact at any shard count.
    pub fn headline(&self) -> &HeadlineStats {
        &self.figures.headline
    }

    /// Run-level merged metrics.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Days that failed and were retried or dropped.
    pub fn degraded(&self) -> &DegradedReport {
        &self.degraded
    }

    /// Shard partition and merge summary.
    pub fn sharding(&self) -> &ShardingReport {
        &self.sharding
    }
}

/// The 2019 no-pandemic twin of a study run.
pub struct Counterfactual {
    /// The counterfactual study itself.
    pub study: Study,
    /// Apr/May traffic growth of the 2020 post-shutdown cohort over the
    /// same cohort in 2019 (the paper reports +53%).
    pub growth_vs_2019: f64,
}

/// What [`StudyBuilder::run`] returns: the study plus, when requested,
/// its 2019 counterfactual. Dereferences to the main [`Study`].
pub struct StudyRun {
    /// The main (2020) study.
    pub study: Study,
    /// The 2019 counterfactual, if [`StudyBuilder::with_counterfactual`]
    /// was requested.
    pub counterfactual: Option<Counterfactual>,
    /// The live telemetry server, still serving the run's final state,
    /// if [`StudyBuilder::serve`] was requested. Dropping the run shuts
    /// it down.
    pub telemetry: Option<TelemetryServer>,
}

impl StudyRun {
    /// Discard the counterfactual (if any) and keep the main study.
    pub fn into_study(self) -> Study {
        self.study
    }

    /// Apr/May traffic growth vs the 2019 counterfactual, if one ran.
    pub fn growth_vs_2019(&self) -> Option<f64> {
        self.counterfactual.as_ref().map(|c| c.growth_vs_2019)
    }
}

impl std::ops::Deref for StudyRun {
    type Target = Study;

    fn deref(&self) -> &Study {
        &self.study
    }
}

/// One cell of a scenario matrix: a full study run under one scenario.
pub struct MatrixCell {
    /// The scenario's name (also the cell's output directory name).
    pub scenario_name: String,
    /// The scenario's canonical content hash, as 16 lowercase hex
    /// digits — recorded in the cell's manifest for provenance.
    pub scenario_hash_hex: String,
    /// The completed run.
    pub run: StudyRun,
}

/// What [`StudyBuilder::run_matrix`] returns: one completed study per
/// scenario, in the order requested.
pub struct MatrixRun {
    /// Per-scenario cells.
    pub cells: Vec<MatrixCell>,
}

impl MatrixRun {
    /// Find a cell by scenario name.
    pub fn cell(&self, name: &str) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| c.scenario_name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_obs::CountingObserver;
    use std::sync::Arc;

    fn tiny() -> SimConfig {
        SimConfig {
            scale: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let a = Study::builder(tiny()).run().unwrap().into_study();
        let b = Study::builder(tiny())
            .threads(4)
            .run()
            .unwrap()
            .into_study();
        assert_eq!(a.norm_stats, b.norm_stats);
        assert_eq!(a.summary.resident.len(), b.summary.resident.len());
        assert_eq!(a.summary.post_shutdown.len(), b.summary.post_shutdown.len());
        // Bit-exact, floats included: the ordered reduction folds day
        // collectors in calendar order regardless of which worker ran
        // which day, so no float tolerance is needed.
        assert_eq!(a.headline(), b.headline());
        // Metrics are deterministic too: per-worker registries merge
        // commutatively, so thread count cannot change the totals.
        assert_eq!(a.metrics().counters, b.metrics().counters);
        assert!(a.degraded().is_empty());
    }

    #[test]
    fn study_produces_plausible_shape() {
        let s = Study::builder(tiny())
            .threads(4)
            .run()
            .unwrap()
            .into_study();
        let h = s.headline();
        // Population declines into shutdown.
        assert!(h.peak_active > 2 * h.trough_active, "{h:?}");
        // Some post-shutdown users exist and some are international.
        assert!(h.post_shutdown_devices > 0);
        assert!(h.intl_devices > 0);
        assert!(h.identified_devices >= h.intl_devices);
        // Traffic grows into the pandemic.
        assert!(h.traffic_growth_feb_to_aprmay > 0.2, "{h:?}");
        // All flows attributed.
        assert_eq!(s.norm_stats.unattributed, 0);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let err = Study::builder(SimConfig {
            scale: -0.5,
            ..Default::default()
        })
        .run()
        .err()
        .expect("negative scale must not run");
        assert!(matches!(err, StudyError::Config(_)), "{err}");
    }

    #[test]
    fn audit_mostly_correct() {
        let s = Study::builder(tiny())
            .threads(4)
            .run()
            .unwrap()
            .into_study();
        let audit = s.classification_audit(100);
        assert!(audit.sampled > 50);
        assert!(
            audit.accuracy() > 0.6,
            "accuracy {} ({:?})",
            audit.accuracy(),
            audit
        );
    }

    #[test]
    fn observer_sees_every_day_and_metrics_can_be_disabled() {
        let obs = Arc::new(CountingObserver::new());
        let run = Study::builder(tiny())
            .threads(2)
            .observer(Arc::clone(&obs))
            .metrics(false)
            .run()
            .unwrap();
        let days = StudyCalendar::days().count() as u64;
        assert_eq!(obs.days_started(), days);
        assert_eq!(obs.days_finished(), days);
        assert_eq!(obs.days_failed(), 0);
        assert_eq!(obs.workers_idled(), 2);
        assert_eq!(obs.flows(), run.study.norm_stats.attributed);
        // metrics(false) leaves the snapshot empty.
        assert!(run.study.metrics().counters.is_empty());
    }

    #[test]
    fn injected_panic_is_quarantined_and_recovered() {
        let obs = Arc::new(CountingObserver::new());
        let run = Study::builder(tiny())
            .threads(2)
            .observer(Arc::clone(&obs))
            .fault_profile(FaultProfile::new().panic_on_day(47))
            .run()
            .unwrap();
        let degraded = run.study.degraded();
        assert_eq!(degraded.recovered.len(), 1, "{degraded:?}");
        assert!(degraded.failed.is_empty(), "{degraded:?}");
        assert_eq!(degraded.recovered[0].day, 47);
        assert_eq!(degraded.recovered[0].attempt, 0);
        assert_eq!(degraded.recovered[0].stage, "pipeline");
        assert_eq!(obs.days_failed(), 1);
        // The retried day's data is present and exact: the recovered
        // day submits under its original calendar index, so the run
        // matches a clean one bit for bit — floats included.
        let clean = Study::builder(tiny()).threads(2).run().unwrap();
        assert_eq!(run.study.norm_stats, clean.study.norm_stats);
        assert_eq!(run.study.headline(), clean.study.headline());
    }

    #[test]
    fn live_publisher_tracks_run_and_finishes_with_final_metrics() {
        let live = LivePublisher::new();
        let run = Study::builder(tiny()).threads(2).live(&live).run().unwrap();
        assert!(live.is_finished());
        let days = StudyCalendar::days().count() as u64;
        let p = live.progress();
        assert_eq!(p.status, "done");
        assert_eq!(p.days_total, days);
        assert_eq!(p.days_completed, days);
        assert_eq!(p.days_inflight, 0);
        assert_eq!(p.eta_ns, Some(0));
        assert_eq!(p.flows, run.study.norm_stats.attributed);
        // The final live view is the run's own merged metrics, exactly.
        assert_eq!(&live.metrics(), run.study.metrics());
        // Day-boundary instrumentation: one duration sample per day, and
        // the inflight gauge saw at least one day in flight.
        let h = run
            .study
            .metrics()
            .histogram("study.day_duration_ns")
            .expect("day duration histogram");
        assert_eq!(h.count(), days);
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert!(run.study.metrics().gauge("study.days_inflight") >= 1);
    }

    #[test]
    fn serving_telemetry_does_not_change_results() {
        let clean = Study::builder(tiny()).threads(2).run().unwrap();
        let served = Study::builder(tiny())
            .threads(2)
            .serve("127.0.0.1:0")
            .run()
            .unwrap();
        assert_eq!(
            clean.study.metrics().counters,
            served.study.metrics().counters
        );
        assert_eq!(clean.study.norm_stats, served.study.norm_stats);
        assert_eq!(
            clean.study.headline().peak_active,
            served.study.headline().peak_active
        );
        // The server handle rides on the run and still answers with the
        // final state.
        let server = served.telemetry.as_ref().expect("server handle");
        let mut conn = std::net::TcpStream::connect(server.addr()).expect("connect");
        use std::io::{Read as _, Write as _};
        write!(conn, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).expect("read");
        assert!(raw.contains("\"status\":\"done\""), "{raw}");
    }

    #[test]
    fn serve_bind_failure_is_a_typed_error() {
        // Occupy an ephemeral port so the builder's bind collides with
        // it (privileged ports are no obstacle when tests run as root).
        let taken = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let addr = taken.local_addr().expect("local addr").to_string();
        let err = Study::builder(tiny())
            .serve(addr)
            .run()
            .err()
            .expect("binding an occupied port must fail");
        assert!(matches!(err, StudyError::Serve { .. }), "{err}");
    }

    #[test]
    fn strict_mode_fails_fast_on_injected_panic() {
        let err = Study::builder(tiny())
            .threads(2)
            .fault_profile(FaultProfile::new().panic_on_day(47))
            .strict(true)
            .run()
            .err()
            .expect("strict run over a panicking day must error");
        match err {
            StudyError::DayFailed(f) => {
                assert_eq!(f.day, 47);
                assert_eq!(f.attempt, 0);
                assert!(f.error.contains("injected"), "{f}");
            }
            other => panic!("expected DayFailed, got {other}"),
        }
    }
}
