//! The study orchestrator: generate → pipeline → collect → finalize,
//! in parallel over days.
//!
//! Parallelism is a work-stealing day queue: workers pull the next day
//! index off a shared atomic cursor, stream it end-to-end through
//! [`process_day_streaming`], and merge their collectors at the end.
//! Which worker processes which day is nondeterministic, but results
//! are not: days are independent and the collector merge is
//! commutative, so any schedule produces the same study.

use crate::pipeline::process_day_streaming;
use analysis::collect::{PipelineCtx, StudyCollector};
use analysis::figures::{self, StudySummary};
use analysis::HeadlineStats;
use campussim::{CampusSim, SimConfig};
use devclass::{audit_sample, AuditReport, DeviceType};
use dhcplog::NormalizeStats;
use geoloc::SubPop;
use nettrace::time::{Day, Month, StudyCalendar};
use nettrace::DeviceId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker's share: pull days off `cursor` until the queue is dry,
/// streaming each through the pipeline into a private collector.
fn drain_days(
    sim: &CampusSim,
    ctx: &PipelineCtx,
    days: &[Day],
    cursor: &AtomicUsize,
) -> (StudyCollector, NormalizeStats) {
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&day) = days.get(i) else { break };
        stats += process_day_streaming(
            ctx,
            sim.directory().table(),
            &mut collector,
            day,
            sim,
            sim.config().anon_key,
        );
    }
    (collector, stats)
}

/// Merge per-worker results into one collector + stats pair.
fn merge_results(
    results: impl IntoIterator<Item = (StudyCollector, NormalizeStats)>,
) -> (StudyCollector, NormalizeStats) {
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    for (c, s) in results {
        collector.merge(c);
        stats += s;
    }
    (collector, stats)
}

/// A completed study run.
pub struct Study {
    /// The synthetic campus it ran against.
    pub sim: CampusSim,
    /// Everything collected by the pipeline.
    pub collector: StudyCollector,
    /// Classified, segmented device universe.
    pub summary: StudySummary,
    /// Aggregate normalization statistics.
    pub norm_stats: NormalizeStats,
}

impl Study {
    /// Run the full 121-day study, fanning days out over `threads`
    /// workers (1 = sequential). Days are handed out through a shared
    /// work-stealing cursor, so a slow day (e.g. peak-occupancy
    /// February) never leaves the other workers idle the way static
    /// round-robin chunking did. Deterministic regardless of thread
    /// count: each day is streamed independently and the per-worker
    /// collectors merge commutatively.
    pub fn run(cfg: SimConfig, threads: usize) -> Study {
        let sim = CampusSim::new(cfg);
        let ctx = PipelineCtx::study();
        let days: Vec<Day> = StudyCalendar::days().collect();
        let threads = threads.max(1);
        let cursor = AtomicUsize::new(0);

        let (collector, norm_stats) = if threads == 1 {
            drain_days(&sim, &ctx, &days, &cursor)
        } else {
            let results: Vec<(StudyCollector, NormalizeStats)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| s.spawn(|| drain_days(&sim, &ctx, &days, &cursor)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            merge_results(results)
        };

        let summary = StudySummary::finalize(&collector);
        Study {
            sim,
            collector,
            summary,
            norm_stats,
        }
    }

    /// The paper's headline statistics for this run.
    pub fn headline(&self) -> HeadlineStats {
        figures::headline_stats(&self.collector, &self.summary)
    }

    /// Ground-truth device types from the generator (for validation).
    pub fn ground_truth_types(&self) -> HashMap<DeviceId, DeviceType> {
        self.sim
            .population()
            .devices
            .iter()
            .map(|d| (d.id, d.kind.true_type()))
            .collect()
    }

    /// Ground-truth sub-populations.
    pub fn ground_truth_subpop(&self) -> HashMap<DeviceId, SubPop> {
        self.sim
            .population()
            .devices
            .iter()
            .map(|d| {
                (
                    d.id,
                    self.sim.population().students[d.owner as usize].subpop,
                )
            })
            .collect()
    }

    /// Reproduce the paper's manual 100-device classification audit
    /// against generator ground truth (§3: 84 correct / 2 affirmative
    /// errors / 14 conservative unknowns).
    pub fn classification_audit(&self, sample: usize) -> AuditReport {
        let truth = self.ground_truth_types();
        audit_sample(
            &self.summary.device_types,
            &truth,
            sample,
            self.sim.config().seed,
        )
    }

    /// Mean bytes per active device-day over April+May, for post-shutdown
    /// users. Per-device normalization makes the 2019 comparison
    /// meaningful: the 2019 campus had no shutdown, so its population is
    /// several times larger, and raw totals would compare populations,
    /// not behaviour.
    pub fn aprmay_daily_traffic(&self) -> f64 {
        self.aprmay_daily_traffic_over(&self.summary.post_shutdown)
    }

    /// [`Study::aprmay_daily_traffic`] restricted to an explicit device
    /// set — used to compare the *same cohort* against the counterfactual
    /// run (where nobody departed, so its own post-shutdown set is the
    /// whole campus with a different device mix).
    pub fn aprmay_daily_traffic_over(&self, devices: &std::collections::HashSet<DeviceId>) -> f64 {
        let mut bytes = 0u64;
        let mut device_days = 0u64;
        for &dev in devices {
            for m in [Month::Apr, Month::May] {
                bytes += self.collector.volume.month_total(dev, m);
                for d in m.first_day().0..m.first_day().0 + m.num_days() {
                    if self.collector.volume.active_on(dev, Day(d)) {
                        device_days += 1;
                    }
                }
            }
        }
        if device_days == 0 {
            0.0
        } else {
            bytes as f64 / device_days as f64
        }
    }
}

/// Run the study plus its 2019 counterfactual and return
/// (study, counterfactual, growth-vs-2019). The counterfactual shares
/// the seed and population scale but has no pandemic; the paper reports
/// Apr/May 2020 traffic 53% above 2019.
///
/// Both runs share one pool of scoped workers: each worker drains the
/// study's day queue, then rolls straight into the counterfactual's,
/// so no threads are torn down and respawned between the runs and the
/// pool stays busy across the boundary.
pub fn run_with_counterfactual(cfg: SimConfig, threads: usize) -> (Study, Study, f64) {
    let cf_cfg = cfg.counterfactual();
    let sim = CampusSim::new(cfg);
    let cf_sim = CampusSim::new(cf_cfg);
    let ctx = PipelineCtx::study();
    let days: Vec<Day> = StudyCalendar::days().collect();
    let threads = threads.max(1);
    let cursor = AtomicUsize::new(0);
    let cf_cursor = AtomicUsize::new(0);

    type WorkerOut = (
        (StudyCollector, NormalizeStats),
        (StudyCollector, NormalizeStats),
    );
    let results: Vec<WorkerOut> = if threads == 1 {
        vec![(
            drain_days(&sim, &ctx, &days, &cursor),
            drain_days(&cf_sim, &ctx, &days, &cf_cursor),
        )]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        (
                            drain_days(&sim, &ctx, &days, &cursor),
                            drain_days(&cf_sim, &ctx, &days, &cf_cursor),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    let (study_results, cf_results): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let (collector, norm_stats) = merge_results(study_results);
    let (cf_collector, cf_norm_stats) = merge_results(cf_results);

    let summary = StudySummary::finalize(&collector);
    let cf_summary = StudySummary::finalize(&cf_collector);
    let study = Study {
        sim,
        collector,
        summary,
        norm_stats,
    };
    let cf = Study {
        sim: cf_sim,
        collector: cf_collector,
        summary: cf_summary,
        norm_stats: cf_norm_stats,
    };

    // Compare the *same cohort*: the 2020 post-shutdown users, whose
    // devices exist identically in the counterfactual population (same
    // seed, unconditional population draws).
    let cohort = &study.summary.post_shutdown;
    let cf_traffic = cf.aprmay_daily_traffic_over(cohort);
    let growth = if cf_traffic > 0.0 {
        study.aprmay_daily_traffic_over(cohort) / cf_traffic - 1.0
    } else {
        0.0
    };
    (study, cf, growth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig {
            scale: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let a = Study::run(tiny(), 1);
        let b = Study::run(tiny(), 4);
        assert_eq!(a.norm_stats, b.norm_stats);
        assert_eq!(a.summary.resident.len(), b.summary.resident.len());
        assert_eq!(a.summary.post_shutdown.len(), b.summary.post_shutdown.len());
        let ha = a.headline();
        let hb = b.headline();
        assert_eq!(ha.peak_active, hb.peak_active);
        assert_eq!(ha.intl_devices, hb.intl_devices);
        assert!((ha.traffic_growth_feb_to_aprmay - hb.traffic_growth_feb_to_aprmay).abs() < 1e-9);
    }

    #[test]
    fn study_produces_plausible_shape() {
        let s = Study::run(tiny(), 4);
        let h = s.headline();
        // Population declines into shutdown.
        assert!(h.peak_active > 2 * h.trough_active, "{h:?}");
        // Some post-shutdown users exist and some are international.
        assert!(h.post_shutdown_devices > 0);
        assert!(h.intl_devices > 0);
        assert!(h.identified_devices >= h.intl_devices);
        // Traffic grows into the pandemic.
        assert!(h.traffic_growth_feb_to_aprmay > 0.2, "{h:?}");
        // All flows attributed.
        assert_eq!(s.norm_stats.unattributed, 0);
    }

    #[test]
    fn audit_mostly_correct() {
        let s = Study::run(tiny(), 4);
        let audit = s.classification_audit(100);
        assert!(audit.sampled > 50);
        assert!(
            audit.accuracy() > 0.6,
            "accuracy {} ({:?})",
            audit.accuracy(),
            audit
        );
    }
}
