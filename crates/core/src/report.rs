//! Human-readable study reports, figure-file output, and the run
//! provenance manifest.

use crate::error::StudyError;
use crate::study::{DigestStudy, MatrixRun, ShardingReport, Study};
use analysis::ascii;
use analysis::export;
use analysis::figures::HeadlineStats;
use analysis::figures::{self, Fig4Series};
use analysis::DigestFigures;
use devclass::FigureBucket;
use lockdown_obs::manifest::{
    fnv1a_64, AccuracySection, DegradedEntry, FigureContract, MemorySection, RunManifest,
    ShardingSection, StageMemory,
};
use lockdown_obs::{trace, Trace};
use std::fmt::Write as _;
use std::path::Path;

/// Render the full text report: every figure as terminal graphics plus
/// the headline statistics, with the paper's values alongside.
pub fn text_report(study: &Study, growth_vs_2019: Option<f64>) -> String {
    let _span = trace::span("report.text");
    let c = &study.collector;
    let s = &study.summary;
    let figs = DigestFigures {
        fig1: figures::figure1(c, s),
        fig2: figures::figure2(c, s),
        fig3: figures::figure3(c, s),
        fig4: figures::figure4(c, s),
        fig5: figures::figure5(c, s),
        fig6: figures::figure6(c, s),
        fig7: figures::figure7(c, s),
        fig8: figures::figure8(c, s),
        headline: study.headline(),
    };
    let mut out = figures_text(&figs, study.sim.config().scale, growth_vs_2019);
    let audit = study.classification_audit(100);
    let _ = writeln!(
        out,
        "classification audit: {}/{} correct, {} affirmative errors, {} conservative unknowns (paper: 84/100, 2, 14)",
        audit.correct, audit.sampled, audit.affirmative_errors, audit.conservative_unknown
    );
    out
}

/// Render a digest run's report: the same figure graphics and headline
/// table as [`text_report`], from merged shard digests instead of a
/// run-level collector. Headline statistics are exact; distribution
/// figures carry the digest's ≤2× quantile approximation. There is no
/// classification-audit line — digest mode keeps no device table to
/// audit against.
pub fn digest_text_report(d: &DigestStudy) -> String {
    let _span = trace::span("report.text");
    let sh = d.sharding();
    let mut out = format!(
        "== digest mode: {} shards, merge depth {}, headline exact, distribution figures ≤2× ==\n\n",
        sh.shards, sh.merge_depth
    );
    out.push_str(&figures_text(&d.figures, d.cfg.scale, None));
    if let Some(cf) = &d.counterfactual {
        let _ = writeln!(
            out,
            "{:<46} {:>11.1}%                | +53% (cohort-matched; this is the aggregate ratio)",
            "traffic vs 2019 counterfactual (Apr/May)",
            100.0 * cf.aggregate_growth_vs_2019
        );
        let _ = writeln!(
            out,
            "   2019 twin: {} resident devices (digest-streamed, same error contract)",
            cf.resident_devices
        );
    }
    out
}

/// The figure/headline body shared by the exact and digest reports.
fn figures_text(figs: &DigestFigures, scale: f64, growth_vs_2019: Option<f64>) -> String {
    let mut out = String::new();
    let rescale = 1.0 / scale;
    let (f1, f2, f3, f4) = (&figs.fig1, &figs.fig2, &figs.fig3, &figs.fig4);
    let (f5, f6, f7, f8) = (&figs.fig5, &figs.fig6, &figs.fig7, &figs.fig8);
    let h = &figs.headline;

    let _ = writeln!(
        out,
        "== Locked-In during Lock-Down: reproduction report (scale {scale}, ×{rescale:.0} to paper population) =="
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "-- Figure 1: active devices per day by type --");
    for b in FigureBucket::ALL {
        let vals: Vec<f64> = f1.per_bucket[b.index()].iter().map(|&x| x as f64).collect();
        let _ = writeln!(out, "{}", ascii::daily_series(b.name(), &vals));
    }
    let total: Vec<f64> = f1.total.iter().map(|&x| x as f64).collect();
    let _ = writeln!(out, "{}", ascii::daily_series("Total", &total));
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Figure 2: mean vs median bytes per active device per day --"
    );
    for b in FigureBucket::ALL {
        let _ = writeln!(
            out,
            "{}",
            ascii::daily_series(&format!("mean   {}", b.name()), &f2.mean[b.index()])
        );
        let _ = writeln!(
            out,
            "{}",
            ascii::daily_series(&format!("median {}", b.name()), &f2.median[b.index()])
        );
    }
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Figure 3: normalized median traffic per device per hour of week (Thu-first) --"
    );
    for (w, label) in f3.labels.iter().enumerate() {
        let _ = writeln!(out, "{}", ascii::hour_of_week(label, &f3.weeks[w]));
    }
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Figure 4: median daily non-Zoom bytes per post-shutdown device --"
    );
    for (i, series) in Fig4Series::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}",
            ascii::daily_series(series.label(), &f4.series[i])
        );
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "-- Figure 5: daily aggregate Zoom traffic --");
    let _ = writeln!(out, "{}", ascii::daily_series("Zoom bytes/day", &f5.daily));
    let peak = f5.daily.iter().cloned().fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "   peak day: {} (×{rescale:.0} ≈ {} at paper scale)",
        ascii::fmt_bytes(peak),
        ascii::fmt_bytes(peak * rescale),
    );
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Figure 6: monthly social session duration per mobile device (hours) --"
    );
    let apps = ["Facebook", "Instagram", "TikTok"];
    let months = ["February", "March", "April", "May"];
    for (ai, app) in apps.iter().enumerate() {
        let _ = writeln!(out, " {app}:");
        for (si, sp) in ["Domestic", "International"].iter().enumerate() {
            for (mi, m) in months.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {}",
                    ascii::box_row(
                        &format!("{m} ({sp})"),
                        f6.boxes[ai][si][mi].as_ref(),
                        |v| format!("{v:.3}h")
                    )
                );
            }
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "-- Figure 7: monthly Steam usage per device --");
    for (metric, table) in [("bytes", &f7.bytes), ("connections", &f7.conns)] {
        let _ = writeln!(out, " {metric}:");
        for (si, sp) in ["Domestic", "International"].iter().enumerate() {
            for (mi, m) in months.iter().enumerate() {
                let fmt: fn(f64) -> String = if metric == "bytes" {
                    |v| ascii::fmt_bytes(v)
                } else {
                    |v| format!("{v:.0}")
                };
                let _ = writeln!(
                    out,
                    "  {}",
                    ascii::box_row(&format!("{m} ({sp})"), table[si][mi].as_ref(), fmt)
                );
            }
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Figure 8: Switch gameplay traffic, 3-day moving average (n={} Switches) --",
        f8.n_switches
    );
    let _ = writeln!(
        out,
        "{}",
        ascii::daily_series("gameplay bytes", &f8.daily_ma)
    );
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "-- Headline statistics (measured | rescaled | paper) --"
    );
    let row = |label: &str, measured: f64, paper: &str| {
        format!(
            "{label:<46} {measured:>12.0} | {:>12.0} | {paper}",
            measured * rescale
        )
    };
    let _ = writeln!(
        out,
        "{}",
        row("peak active devices", h.peak_active as f64, "32,019")
    );
    let _ = writeln!(
        out,
        "{}",
        row(
            "trough active devices (shutdown)",
            h.trough_active as f64,
            "4,973"
        )
    );
    let _ = writeln!(
        out,
        "{}",
        row(
            "post-shutdown devices",
            h.post_shutdown_devices as f64,
            "6,522"
        )
    );
    let _ = writeln!(
        out,
        "{}",
        row("international devices", h.intl_devices as f64, "1,022")
    );
    let _ = writeln!(
        out,
        "{:<46} {:>11.1}%                | 18%",
        "international share of identified",
        100.0 * h.intl_devices as f64 / h.identified_devices.max(1) as f64
    );
    let _ = writeln!(
        out,
        "{:<46} {:>11.1}%                | +58%",
        "traffic growth Feb -> Apr/May",
        100.0 * h.traffic_growth_feb_to_aprmay
    );
    if let Some(g) = growth_vs_2019 {
        let _ = writeln!(
            out,
            "{:<46} {:>11.1}%                | +53%",
            "traffic vs 2019 counterfactual (Apr/May)",
            100.0 * g
        );
    }
    let _ = writeln!(
        out,
        "{:<46} {:>11.1}%                | +34%",
        "distinct sites growth Feb -> Apr/May",
        100.0 * h.sites_growth
    );
    let _ = writeln!(
        out,
        "{}",
        row("Switches pre-shutdown", h.switches_pre as f64, "1,097")
    );
    let _ = writeln!(
        out,
        "{}",
        row("Switches post-shutdown", h.switches_post as f64, "267")
    );
    let _ = writeln!(
        out,
        "{}",
        row("new Switches in Apr/May", h.switches_new as f64, "40")
    );

    out
}

/// Write every figure's machine-readable data into `dir`, creating the
/// directory if it does not exist. Returns the number of files written;
/// every failure mode (serialization, directory creation, file write)
/// surfaces as a typed [`StudyError`] naming the path involved.
pub fn write_figure_files(study: &Study, dir: &Path) -> Result<usize, StudyError> {
    let span = trace::span("report.figures");
    std::fs::create_dir_all(dir).map_err(|source| StudyError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let c = &study.collector;
    let s = &study.summary;
    let files: [(&str, String); 8] = [
        ("fig1.csv", export::fig1_csv(&figures::figure1(c, s))),
        ("fig2.csv", export::fig2_csv(&figures::figure2(c, s))),
        ("fig3.csv", export::fig3_csv(&figures::figure3(c, s))),
        ("fig4.csv", export::fig4_csv(&figures::figure4(c, s))),
        ("fig5.csv", export::fig5_csv(&figures::figure5(c, s))),
        ("fig6.json", export::fig6_json(&figures::figure6(c, s))?),
        ("fig7.json", export::fig7_json(&figures::figure7(c, s))?),
        ("fig8.csv", export::fig8_csv(&figures::figure8(c, s))),
    ];
    let mut written = 0;
    for (name, content) in files {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|source| StudyError::Io { path, source })?;
        written += 1;
    }
    span.set_attr("files", written as u64);
    Ok(written)
}

/// Write a digest run's figure files into `dir` — same names and
/// formats as [`write_figure_files`], rendered from the merged shard
/// digests. Returns the number of files written.
pub fn write_digest_figure_files(d: &DigestStudy, dir: &Path) -> Result<usize, StudyError> {
    let span = trace::span("report.figures");
    std::fs::create_dir_all(dir).map_err(|source| StudyError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let f = &d.figures;
    let files: [(&str, String); 8] = [
        ("fig1.csv", export::fig1_csv(&f.fig1)),
        ("fig2.csv", export::fig2_csv(&f.fig2)),
        ("fig3.csv", export::fig3_csv(&f.fig3)),
        ("fig4.csv", export::fig4_csv(&f.fig4)),
        ("fig5.csv", export::fig5_csv(&f.fig5)),
        ("fig6.json", export::fig6_json(&f.fig6)?),
        ("fig7.json", export::fig7_json(&f.fig7)?),
        ("fig8.csv", export::fig8_csv(&f.fig8)),
    ];
    let mut written = 0;
    for (name, content) in files {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|source| StudyError::Io { path, source })?;
        written += 1;
    }
    span.set_attr("files", written as u64);
    Ok(written)
}

/// Render the run's per-stage counters as an aligned text block, with a
/// one-line attribution/labeling summary on top. Empty-run safe.
pub fn metrics_report(study: &Study) -> String {
    metrics_text(study.metrics(), study.degraded(), study.sharding())
}

/// Digest twin of [`metrics_report`]: same counters and quantile lines,
/// from a sharded digest run.
pub fn digest_metrics_report(d: &DigestStudy) -> String {
    metrics_text(d.metrics(), d.degraded(), d.sharding())
}

fn metrics_text(
    m: &lockdown_obs::MetricsSnapshot,
    degraded: &crate::error::DegradedReport,
    sharding: &ShardingReport,
) -> String {
    let flows = m.counter("pipeline.flows_in");
    let attributed = m.counter("normalize.attributed");
    let labeled = m.counter("resolver.labeled");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- Pipeline metrics: {flows} flows in, {attributed} attributed, {labeled} labeled --"
    );
    // Day-duration quantiles come from the same `study.day_duration_ns`
    // samples that drive the live `/progress` ETA, so the post-run
    // report and the in-run view can never disagree about pacing.
    if let Some(days) = m.histogram("study.day_duration_ns") {
        let _ = writeln!(
            out,
            "-- Day durations: {} days, mean {:.1} ms, p50 ≤ {:.1} ms, p95 ≤ {:.1} ms, p99 ≤ {:.1} ms --",
            days.count(),
            days.mean() / 1e6,
            days.quantile(0.5) as f64 / 1e6,
            days.quantile(0.95) as f64 / 1e6,
            days.quantile(0.99) as f64 / 1e6,
        );
    }
    if let Some(idle) = m.histogram("study.worker_idle_ns") {
        let _ = writeln!(
            out,
            "-- Worker tail idle: {} workers, mean {:.1} ms, p99 ≤ {:.1} ms --",
            idle.count(),
            idle.mean() / 1e6,
            idle.quantile(0.99) as f64 / 1e6,
        );
    }
    // Degraded-input accounting: what the fault layer (or a genuinely
    // corrupt capture) cost the run, and how the run coped.
    let dropped = m.counter("pipeline.errors.flows_dropped")
        + m.counter("pipeline.errors.leases_dropped")
        + m.counter("pipeline.errors.dns_answers_dropped");
    let repaired =
        m.counter("pipeline.errors.flows_repaired") + m.counter("pipeline.errors.leases_repaired");
    if dropped + repaired > 0 {
        let _ = writeln!(
            out,
            "-- Degraded input: {dropped} records dropped, {repaired} repaired (see pipeline.errors.* / assembler.malformed.*) --"
        );
    }
    if !degraded.is_empty() {
        let _ = writeln!(
            out,
            "-- Degraded days: {} recovered on retry, {} dropped --",
            degraded.recovered.len(),
            degraded.failed.len()
        );
    }
    if let Some(line) = sharding_line(sharding) {
        let _ = writeln!(out, "{line}");
    }
    if let Some(line) = accuracy_line(sharding) {
        let _ = writeln!(out, "{line}");
    }
    // Per-shard load table: how evenly the (shard × day) grid spread.
    for (i, &flows) in sharding.per_shard_flows.iter().enumerate() {
        let bytes = sharding.per_shard_bytes.get(i).copied().unwrap_or(0);
        let wall = sharding.per_shard_wall_ns.get(i).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "   shard {i}: {flows} flows, {:.1} MiB collected, {:.1} ms busy",
            bytes as f64 / (1 << 20) as f64,
            wall as f64 / 1e6,
        );
    }
    // Memory headline, present only when the run tracked allocation.
    if m.gauges.contains_key("mem.peak_bytes") {
        let allocs = m.counter("mem.allocs");
        let per_flow = if flows > 0 {
            allocs as f64 / flows as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "-- Memory: peak {:.1} MiB, live {:.1} MiB at finalize, {allocs} allocs ({per_flow:.3}/flow) --",
            m.gauge("mem.peak_bytes") as f64 / (1 << 20) as f64,
            m.gauge("mem.live_bytes") as f64 / (1 << 20) as f64,
        );
    }
    out.push_str(&m.to_text());
    out
}

/// The run's per-stage counters as a JSON object (see
/// [`lockdown_obs::MetricsSnapshot::to_json`]).
pub fn metrics_report_json(study: &Study) -> String {
    study.metrics().to_json()
}

/// Build the provenance manifest for a completed run: config hash,
/// seed/scale/threads, the version of every pipeline crate, the metrics
/// snapshot, and — when the run was traced — wall time and span totals
/// from `trace`. Written alongside figures so the artifact directory is
/// self-describing.
pub fn run_manifest(study: &Study, threads: usize, trace: Option<&Trace>) -> RunManifest {
    let cfg = study.sim.config();
    let mut m = RunManifest::new("repro");
    // The full config Debug rendering covers every knob, so any config
    // change yields a different fingerprint.
    m.config_hash_hex = format!("{:016x}", fnv1a_64(format!("{cfg:?}").as_bytes()));
    let scenario = study.scenario();
    m.scenario = Some(scenario.name.clone());
    m.scenario_hash_hex = Some(scenario.content_hash_hex());
    m.seed = cfg.seed;
    m.scale = cfg.scale;
    m.threads = threads;
    for (name, version) in [
        ("lockdown-core", crate::VERSION),
        ("lockdown-obs", lockdown_obs::VERSION),
        ("nettrace", nettrace::VERSION),
        ("campussim", campussim::VERSION),
        ("analysis", analysis::VERSION),
        ("dhcplog", dhcplog::VERSION),
        ("dnslog", dnslog::VERSION),
        ("devclass", devclass::VERSION),
        ("geoloc", geoloc::VERSION),
        ("appsig", appsig::VERSION),
    ] {
        m.crate_version(name, version);
    }
    if let Some(t) = trace {
        m.record_trace(t);
    }
    let degraded = study.degraded();
    for (list, recovered) in [(&degraded.recovered, true), (&degraded.failed, false)] {
        for f in list.iter() {
            m.degraded.push(DegradedEntry {
                day: f.day,
                stage: f.stage.clone(),
                error: f.error.clone(),
                attempt: f.attempt,
                recovered,
            });
        }
    }
    let metrics = study.metrics();
    if !(metrics.counters.is_empty() && metrics.gauges.is_empty() && metrics.histograms.is_empty())
    {
        m.metrics = Some(metrics.clone());
    }
    m.memory = memory_section(metrics);
    m.sharding = sharding_section(study.sharding());
    // The caller flips `counterfactual` to "cohort-exact" when it ran
    // one — the study itself doesn't carry that request.
    m.accuracy = Some(accuracy_section(
        "exact",
        "not-requested",
        &study.headline(),
    ));
    m
}

/// Build the provenance manifest for a completed digest run — the
/// digest twin of [`run_manifest`], with a `sharding` section always
/// present (a digest run is sharded by construction).
pub fn digest_manifest(d: &DigestStudy, threads: usize) -> RunManifest {
    let mut m = RunManifest::new("repro");
    m.config_hash_hex = format!("{:016x}", fnv1a_64(format!("{:?}", d.cfg).as_bytes()));
    m.scenario = Some(d.cfg.scenario.name.clone());
    m.scenario_hash_hex = Some(d.cfg.scenario.content_hash_hex());
    m.seed = d.cfg.seed;
    m.scale = d.cfg.scale;
    m.threads = threads;
    for (name, version) in [
        ("lockdown-core", crate::VERSION),
        ("lockdown-obs", lockdown_obs::VERSION),
        ("nettrace", nettrace::VERSION),
        ("campussim", campussim::VERSION),
        ("analysis", analysis::VERSION),
        ("dhcplog", dhcplog::VERSION),
        ("dnslog", dnslog::VERSION),
        ("devclass", devclass::VERSION),
        ("geoloc", geoloc::VERSION),
        ("appsig", appsig::VERSION),
    ] {
        m.crate_version(name, version);
    }
    let degraded = d.degraded();
    for (list, recovered) in [(&degraded.recovered, true), (&degraded.failed, false)] {
        for f in list.iter() {
            m.degraded.push(DegradedEntry {
                day: f.day,
                stage: f.stage.clone(),
                error: f.error.clone(),
                attempt: f.attempt,
                recovered,
            });
        }
    }
    let metrics = d.metrics();
    if !(metrics.counters.is_empty() && metrics.gauges.is_empty() && metrics.histograms.is_empty())
    {
        m.metrics = Some(metrics.clone());
    }
    m.memory = memory_section(metrics);
    let sh = d.sharding();
    m.sharding = Some(ShardingSection {
        shards: sh.shards,
        mode: sh.mode.to_string(),
        merge_depth: sh.merge_depth,
        per_shard_peak_bytes: peak_list(sh),
        per_shard_flows: sh.per_shard_flows.clone(),
        per_shard_bytes: sh.per_shard_bytes.clone(),
        per_shard_wall_ns: sh.per_shard_wall_ns.clone(),
    });
    m.accuracy = Some(accuracy_section(
        "digest",
        if d.counterfactual.is_some() {
            "aggregate-digest"
        } else {
            "not-requested"
        },
        d.headline(),
    ));
    m
}

/// Build the manifest `accuracy` section: the producing mode's error
/// contract per figure plus the run's (always exact) headline values,
/// so two manifests alone suffice for a cross-run drift check.
fn accuracy_section(mode: &str, counterfactual: &str, h: &HeadlineStats) -> AccuracySection {
    let exact = mode == "exact";
    let figures: Vec<FigureContract> = analysis::accuracy::FIGURE_CLASSES
        .iter()
        .map(|c| FigureContract {
            figure: c.figure.to_string(),
            kind: if exact || c.exact { "exact" } else { "approx" }.to_string(),
            bound: if exact || c.exact { 1.0 } else { c.bound },
        })
        .collect();
    let guaranteed_bound = figures.iter().map(|f| f.bound).fold(1.0, f64::max);
    AccuracySection {
        mode: mode.to_string(),
        guaranteed_bound,
        counterfactual: counterfactual.to_string(),
        headline: analysis::accuracy::headline_fields(h)
            .iter()
            .map(|&(name, value)| (name.to_string(), value))
            .collect(),
        figures,
    }
}

/// One-line accuracy contract for the text report; `None` for the
/// monolithic identity partition (trivially exact, nothing to say).
fn accuracy_line(sh: &ShardingReport) -> Option<String> {
    if sh.shards <= 1 && sh.merge_depth <= 1 {
        return None;
    }
    Some(if sh.mode == "digest" {
        format!(
            "-- Accuracy: digest mode — headline exact, distribution figures ≤{:.0}× (fig3 ≤{:.0}×) --",
            analysis::QUANTILE_BOUND,
            analysis::QUANTILE_BOUND * analysis::QUANTILE_BOUND,
        )
    } else {
        "-- Accuracy: exact mode — figures byte-identical to the monolithic reduction --"
            .to_string()
    })
}

/// The run's sharded-mode summary for text reports; `None` for the
/// monolithic identity partition (nothing to report).
fn sharding_line(sh: &ShardingReport) -> Option<String> {
    if sh.shards <= 1 && sh.merge_depth <= 1 {
        return None;
    }
    let peak = peak_list(sh).into_iter().max().unwrap_or(0);
    Some(format!(
        "-- Sharding: {} shards ({}), merge depth {}, peak shard ≤ {:.1} MiB --",
        sh.shards,
        sh.mode,
        sh.merge_depth,
        peak as f64 / (1 << 20) as f64,
    ))
}

/// Manifest `sharding` section from a run's report; `None` for the
/// monolithic identity partition so unsharded manifests are unchanged.
fn sharding_section(sh: &ShardingReport) -> Option<ShardingSection> {
    if sh.shards <= 1 && sh.merge_depth <= 1 {
        return None;
    }
    Some(ShardingSection {
        shards: sh.shards,
        mode: sh.mode.to_string(),
        merge_depth: sh.merge_depth,
        per_shard_peak_bytes: peak_list(sh),
        per_shard_flows: sh.per_shard_flows.clone(),
        per_shard_bytes: sh.per_shard_bytes.clone(),
        per_shard_wall_ns: sh.per_shard_wall_ns.clone(),
    })
}

/// Per-shard peak bytes, dropping the all-zero vector an untracked run
/// records (the gauge never fired) so manifests don't carry noise.
fn peak_list(sh: &ShardingReport) -> Vec<u64> {
    if sh.per_shard_peak_bytes.iter().all(|&b| b == 0) {
        Vec::new()
    } else {
        sh.per_shard_peak_bytes.clone()
    }
}

/// Harvest the manifest `memory` section from a run's `mem.*` metrics;
/// `None` when the run did not track allocation.
fn memory_section(m: &lockdown_obs::MetricsSnapshot) -> Option<MemorySection> {
    if !m.gauges.contains_key("mem.peak_bytes") {
        return None;
    }
    let flows = m.counter("pipeline.flows_in");
    let allocs = m.counter("mem.allocs");
    let per_stage = ["normalize", "resolver", "collect"]
        .into_iter()
        .map(|stage| {
            (
                stage.to_string(),
                StageMemory {
                    alloc_bytes: m.counter(&format!("mem.stage.{stage}.alloc_bytes")),
                    allocs: m.counter(&format!("mem.stage.{stage}.allocs")),
                    peak_net_bytes: m.gauge(&format!("mem.stage.{stage}.peak_net_bytes")),
                },
            )
        })
        .collect();
    Some(MemorySection {
        peak_bytes: m.gauge("mem.peak_bytes"),
        live_bytes: m.gauge("mem.live_bytes"),
        alloc_bytes: m.counter("mem.alloc_bytes"),
        freed_bytes: m.counter("mem.freed_bytes"),
        allocs,
        deallocs: m.counter("mem.deallocs"),
        reallocs: m.counter("mem.reallocs"),
        allocs_per_flow: if flows > 0 {
            allocs as f64 / flows as f64
        } else {
            0.0
        },
        per_stage,
    })
}

/// Render a cross-scenario comparison: one row of headline statistics
/// per matrix cell, so phase-aligned behaviour shifts (a reopening
/// bump, a second-wave trough) are visible side by side.
pub fn matrix_report(matrix: &MatrixRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Scenario matrix: {} cells ==", matrix.cells.len());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>16} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "hash", "peak", "trough", "post-dev", "intl", "growth", "switches"
    );
    for cell in &matrix.cells {
        let h = cell.run.headline();
        let _ = writeln!(
            out,
            "{:<24} {:>16} {:>10} {:>10} {:>10} {:>10} {:>11.1}% {:>10}",
            cell.scenario_name,
            cell.scenario_hash_hex,
            h.peak_active,
            h.trough_active,
            h.post_shutdown_devices,
            h.intl_devices,
            100.0 * h.traffic_growth_feb_to_aprmay,
            h.switches_pre,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(growth = Feb -> Apr/May traffic; all counts at the run's scale)"
    );
    out
}

/// Write a full scenario-matrix artifact tree under `dir`: one
/// subdirectory per cell (named after the scenario) containing the
/// cell's figure files and a `manifest.json` recording the scenario
/// name and content hash, plus a top-level `comparison.txt` with the
/// cross-scenario report. Returns the total number of files written.
pub fn write_matrix_files(
    matrix: &MatrixRun,
    dir: &Path,
    threads: usize,
) -> Result<usize, StudyError> {
    let span = trace::span("report.matrix");
    let mut written = 0;
    for cell in &matrix.cells {
        let cell_dir = dir.join(&cell.scenario_name);
        written += write_figure_files(&cell.run, &cell_dir)?;
        let manifest = run_manifest(&cell.run, threads, None);
        let path = cell_dir.join("manifest.json");
        manifest
            .write(&path)
            .map_err(|source| StudyError::Io { path, source })?;
        written += 1;
    }
    let path = dir.join("comparison.txt");
    std::fs::write(&path, matrix_report(matrix))
        .map_err(|source| StudyError::Io { path, source })?;
    written += 1;
    span.set_attr("files", written as u64);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use campussim::SimConfig;

    #[test]
    fn report_renders_and_files_write() {
        let study = Study::builder(SimConfig {
            scale: 0.01,
            ..Default::default()
        })
        .threads(4)
        .run()
        .unwrap()
        .into_study();
        let text = text_report(&study, Some(0.5));
        assert!(text.contains("Figure 1"));
        assert!(text.contains("Figure 8"));
        assert!(text.contains("classification audit"));
        assert!(text.contains("paper"));

        let metrics = metrics_report(&study);
        assert!(metrics.contains("Pipeline metrics"));
        assert!(metrics.contains("normalize.attributed"));
        assert!(metrics.contains("Day durations:"), "{metrics}");
        assert!(metrics.contains("p95"), "{metrics}");
        assert!(metrics_report_json(&study).contains("\"counters\""));

        let base = std::env::temp_dir().join("lockdown_report_test");
        // The directory is created on demand, even nested.
        std::fs::remove_dir_all(&base).ok();
        let dir = base.join("nested");
        let written = write_figure_files(&study, &dir).unwrap();
        assert_eq!(written, 8);
        for f in [
            "fig1.csv",
            "fig2.csv",
            "fig3.csv",
            "fig4.csv",
            "fig5.csv",
            "fig6.json",
            "fig7.json",
            "fig8.csv",
        ] {
            assert!(dir.join(f).exists(), "{f}");
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
