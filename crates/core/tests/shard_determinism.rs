//! Shard-count and thread-count invariance of the partitioned runner.
//!
//! The sharding contract (see `DESIGN.md`): at any shard count K and
//! any thread count, the exact path produces byte-identical figures,
//! headline statistics, and normalization stats — floats included —
//! because every device lives in exactly one shard, all collector
//! state is per-device, and the hierarchical merge folds days in
//! calendar order within each shard and shards in shard-id order.
//! Digest mode keeps the headline statistics exact while bounding
//! distribution figures to a ≤2× approximation.

use analysis::figures;
use campussim::{FaultProfile, SimConfig};
use lockdown_core::Study;

fn tiny() -> SimConfig {
    SimConfig {
        scale: 0.01,
        ..Default::default()
    }
}

/// Every figure of the paper, rendered to its debug form — a cheap
/// byte-exact fingerprint of the full figure set.
fn figure_fingerprint(s: &Study) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        figures::figure1(&s.collector, &s.summary),
        figures::figure2(&s.collector, &s.summary),
        figures::figure3(&s.collector, &s.summary),
        figures::figure4(&s.collector, &s.summary),
        figures::figure5(&s.collector, &s.summary),
        figures::figure6(&s.collector, &s.summary),
        figures::figure7(&s.collector, &s.summary),
        figures::figure8(&s.collector, &s.summary),
    )
}

#[test]
fn sharded_exact_is_byte_identical_to_monolithic() {
    let mono = Study::builder(tiny()).run().unwrap().into_study();
    let mono_figs = figure_fingerprint(&mono);
    for (k, threads) in [(2, 1), (2, 4), (7, 2)] {
        let sharded = Study::builder(tiny())
            .shards(k)
            .threads(threads)
            .run()
            .unwrap()
            .into_study();
        assert_eq!(
            sharded.sharding().shards,
            k,
            "partition must resolve to the requested K"
        );
        assert_eq!(sharded.sharding().mode, "exact");
        assert_eq!(sharded.sharding().merge_depth, 2);
        // Bit-exact across the seam, floats included: per-device state
        // merges disjointly and fold order is schedule-independent.
        assert_eq!(mono.headline(), sharded.headline(), "K={k} T={threads}");
        assert_eq!(mono.norm_stats, sharded.norm_stats, "K={k} T={threads}");
        assert_eq!(
            mono.summary.resident.len(),
            sharded.summary.resident.len(),
            "K={k} T={threads}"
        );
        assert_eq!(
            mono_figs,
            figure_fingerprint(&sharded),
            "figures drifted at K={k} T={threads}"
        );
    }
}

#[test]
fn far_more_shards_than_needed_still_exact() {
    // K far beyond the device count: many shards end up tiny or empty.
    let mono = Study::builder(tiny()).run().unwrap().into_study();
    let sharded = Study::builder(tiny())
        .shards(64)
        .run()
        .unwrap()
        .into_study();
    assert_eq!(mono.headline(), sharded.headline());
    assert_eq!(mono.norm_stats, sharded.norm_stats);
}

#[test]
fn explicit_single_shard_uses_monolithic_path() {
    // shards(1) is the compatibility spelling of the default: it must
    // not pay the partition counting pass nor change any output.
    let a = Study::builder(tiny()).run().unwrap().into_study();
    let b = Study::builder(tiny()).shards(1).run().unwrap().into_study();
    assert_eq!(a.headline(), b.headline());
    assert_eq!(a.norm_stats, b.norm_stats);
    assert_eq!(b.sharding().shards, 1);
    assert_eq!(b.sharding().mode, "exact");
    assert_eq!(b.sharding().merge_depth, 1);
}

#[test]
fn sharded_run_is_thread_invariant_under_faults() {
    // A (shard, day) cell that panics is quarantined, retried on its
    // original grid index, and recovers bit-exactly — on any worker.
    let clean = Study::builder(tiny()).shards(2).run().unwrap().into_study();
    let clean_figs = figure_fingerprint(&clean);
    for threads in [1, 4] {
        let faulted = Study::builder(tiny())
            .shards(2)
            .threads(threads)
            .fault_profile(FaultProfile::new().panic_on_day(47))
            .run()
            .unwrap()
            .into_study();
        let degraded = faulted.degraded();
        // Day 47 exists once per shard in the grid; every instance
        // recovers on retry.
        assert_eq!(degraded.recovered.len(), 2, "{degraded:?}");
        assert!(degraded.failed.is_empty(), "{degraded:?}");
        assert_eq!(clean.headline(), faulted.headline(), "T={threads}");
        assert_eq!(clean.norm_stats, faulted.norm_stats, "T={threads}");
        assert_eq!(clean_figs, figure_fingerprint(&faulted), "T={threads}");
    }
}

#[test]
fn digest_headline_is_exact_and_shard_invariant() {
    let exact = Study::builder(tiny()).run().unwrap().into_study();
    let mut last_fingerprint: Option<String> = None;
    for k in [1, 3] {
        let digest = Study::builder(tiny())
            .shards(k)
            .threads(2)
            .run_digest()
            .unwrap();
        assert_eq!(digest.sharding().mode, "digest");
        assert_eq!(digest.sharding().merge_depth, 3);
        // Headline statistics are exact in digest mode — identical to
        // the run-level collector's, at any K.
        assert_eq!(exact.headline(), digest.headline().clone(), "K={k}");
        assert_eq!(exact.norm_stats, digest.norm_stats, "K={k}");
        // The additive figures are exact too.
        assert_eq!(
            format!("{:?}", figures::figure1(&exact.collector, &exact.summary)),
            format!("{:?}", digest.figures.fig1),
            "K={k}"
        );
        assert_eq!(
            format!("{:?}", figures::figure5(&exact.collector, &exact.summary)),
            format!("{:?}", digest.figures.fig5),
            "K={k}"
        );
        // The whole rendered set is K-invariant (approximation error is
        // deterministic and merge-order independent).
        let fp = format!("{:?}", digest.figures.headline)
            + &format!("{:?}{:?}", digest.figures.fig2, digest.figures.fig7);
        if let Some(prev) = &last_fingerprint {
            assert_eq!(prev, &fp, "digest figures drifted at K={k}");
        }
        last_fingerprint = Some(fp);
    }
}
