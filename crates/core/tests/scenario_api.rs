//! Acceptance tests for the scenario API: the built-in `paper-2020`
//! scenario is a byte-exact alias for the legacy pipeline, the
//! `baseline-2019` scenario is the legacy counterfactual, `run_matrix`
//! stamps every cell with its scenario, and the multi-wave built-in
//! produces phase-aligned occupancy shifts.

use analysis::figures;
use campussim::{Scenario, SimConfig};
use lockdown_core::Study;

fn cfg() -> SimConfig {
    SimConfig {
        scale: 0.01,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn explicit_paper_scenario_is_bit_identical_to_the_default_run() {
    let default_run = Study::builder(cfg())
        .threads(2)
        .run()
        .expect("default run")
        .into_study();
    let scenario_run = Study::builder(cfg())
        .threads(2)
        .scenario(Scenario::builtin("paper-2020").expect("builtin"))
        .run()
        .expect("scenario run")
        .into_study();
    // HeadlineStats PartialEq is exact (bitwise on floats), so this
    // catches any drift in the scenario-threaded model tables.
    assert_eq!(default_run.headline(), scenario_run.headline());
    let (dc, ds) = (&default_run.collector, &default_run.summary);
    let (sc, ss) = (&scenario_run.collector, &scenario_run.summary);
    assert_eq!(
        figures::figure1(dc, ds).total,
        figures::figure1(sc, ss).total
    );
    let default_manifest = lockdown_core::run_manifest(&default_run, 2, None);
    let scenario_manifest = lockdown_core::run_manifest(&scenario_run, 2, None);
    assert_eq!(
        default_manifest.config_hash_hex, scenario_manifest.config_hash_hex,
        "the stock scenario must not perturb the provenance hash"
    );
    assert_eq!(scenario_manifest.scenario.as_deref(), Some("paper-2020"));
}

#[test]
fn baseline_scenario_matches_the_legacy_counterfactual() {
    let counterfactual = Study::builder(Scenario::counterfactual_of(&cfg()))
        .threads(2)
        .run()
        .expect("counterfactual run")
        .into_study();
    let baseline = Study::builder(cfg())
        .threads(2)
        .scenario(Scenario::builtin("baseline-2019").expect("builtin"))
        .run()
        .expect("baseline run")
        .into_study();
    assert_eq!(counterfactual.headline(), baseline.headline());
}

#[test]
fn run_matrix_stamps_every_cell_with_its_scenario() {
    let scenarios = Scenario::builtins().to_vec();
    let matrix = Study::builder(cfg())
        .threads(2)
        .run_matrix(&scenarios)
        .expect("matrix run");
    assert_eq!(matrix.cells.len(), scenarios.len());
    for (scenario, cell) in scenarios.iter().zip(&matrix.cells) {
        assert_eq!(cell.scenario_name, scenario.name);
        assert_eq!(cell.scenario_hash_hex, scenario.content_hash_hex());
        assert_eq!(cell.run.scenario().name, scenario.name);
    }
    // The matrix's paper cell is the same study as a direct run.
    let direct = Study::builder(cfg())
        .threads(2)
        .run()
        .expect("direct run")
        .into_study();
    let paper = matrix.cell("paper-2020").expect("paper cell");
    assert_eq!(paper.run.headline(), direct.headline());
    // And the cells genuinely differ from one another.
    let baseline = matrix.cell("baseline-2019").expect("baseline cell");
    assert_ne!(paper.run.headline(), baseline.run.headline());
}

#[test]
fn staggered_scenario_shifts_occupancy_at_its_phase_boundaries() {
    let staggered = Study::builder(cfg())
        .threads(2)
        .scenario(Scenario::builtin("staggered-reopening").expect("builtin"))
        .run()
        .expect("staggered run")
        .into_study();
    let fig1 = figures::figure1(&staggered.collector, &staggered.summary);
    let active = &fig1.total;
    // Partial reopening at day 75: returning students push daily
    // actives above the late-lockdown floor.
    let lockdown_floor = *active[60..75].iter().min().expect("lockdown window");
    let reopened = *active[80..95].iter().max().expect("reopening window");
    assert!(
        reopened > lockdown_floor,
        "reopening should lift actives above the lockdown floor \
         ({reopened} vs {lockdown_floor})"
    );
    // Second wave from day 100: occupancy falls back below the
    // reopened plateau's mean by the end of term.
    let plateau: u32 = active[85..100].iter().sum::<u32>() / 15;
    let second_wave_tail = *active[110..121].iter().min().expect("tail window");
    assert!(
        second_wave_tail < plateau,
        "second wave should cut actives below the reopened plateau \
         ({second_wave_tail} vs {plateau})"
    );
}
