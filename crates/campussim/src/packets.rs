//! Packet-level rendering of a flow trace.
//!
//! The production pipeline's first stage is Zeek over mirrored packets;
//! our full-study fast path synthesizes flow records directly. To prove
//! that shortcut behaviour-preserving, this module renders any set of
//! flow records into actual Ethernet/IPv4/TCP/UDP frames (optionally a
//! pcap file), which `nettrace::assembler` then re-extracts. Integration
//! tests assert the round trip reproduces the original flows' keys,
//! byte counts, and packet counts.

use nettrace::assembler::FlowAssembler;
use nettrace::flow::{FlowRecord, Proto};
use nettrace::mac::MacAddr;
use nettrace::packet::{self, BuildSpec};
use nettrace::tcp::Flags;
use nettrace::Timestamp;

/// Transport payload per rendered packet for ordinary flows.
pub const MSS: u64 = 1_400;

/// Upper bound on payload per rendered packet. Very large flows (game
/// downloads run to gigabytes) are rendered with proportionally larger
/// segments so a flow never explodes into millions of frames — byte
/// accounting, which is what the assembler checks, is unaffected.
pub const MAX_SEGMENT: u64 = 60_000;

/// Chunk size used for a flow of `total` payload bytes: MSS-sized up to
/// ~1000 packets, then scaled up, capped at [`MAX_SEGMENT`].
pub fn chunk_size(total: u64) -> u64 {
    (total / 1_000).clamp(MSS, MAX_SEGMENT)
}

/// The gateway MAC every rendered frame crosses.
pub const GATEWAY_MAC: MacAddr = MacAddr::new(0x02, 0x42, 0xc0, 0xa8, 0x00, 0x01);

/// Render one flow into a timestamped packet sequence.
///
/// TCP flows get a SYN / SYN-ACK handshake, data segments in both
/// directions, and a FIN exchange; UDP flows get datagrams. Payload
/// bytes are split into MSS-sized packets whose byte totals equal the
/// flow's counters exactly. Packet timestamps are spread uniformly over
/// the flow's duration, interleaving directions the way request/response
/// traffic does.
pub fn render_flow(f: &FlowRecord, device_mac: MacAddr) -> Vec<(Timestamp, Vec<u8>)> {
    let mut out = Vec::new();
    let fwd = BuildSpec {
        src_mac: device_mac,
        dst_mac: GATEWAY_MAC,
        src_ip: f.orig,
        dst_ip: f.resp,
        src_port: f.orig_port,
        dst_port: f.resp_port,
        ident: f.orig_port ^ f.resp_port,
    };
    let rev = BuildSpec {
        src_mac: GATEWAY_MAC,
        dst_mac: device_mac,
        src_ip: f.resp,
        dst_ip: f.orig,
        src_port: f.resp_port,
        dst_port: f.orig_port,
        ident: f.orig_port ^ f.resp_port,
    };

    // Split `total` into chunks of at most `size`.
    fn chunks(total: u64, size: u64) -> Vec<u64> {
        let mut v = Vec::new();
        let mut left = total;
        while left > 0 {
            let c = left.min(size);
            v.push(c);
            left -= c;
        }
        v
    }
    let size = chunk_size(f.orig_bytes.max(f.resp_bytes));
    let fwd_chunks = chunks(f.orig_bytes, size);
    let rev_chunks = chunks(f.resp_bytes, size);

    match f.proto {
        Proto::Tcp => {
            // Handshake consumes two of the packet budget per direction if
            // available; Zeek-style accounting counts packets, and our
            // generator's counts are approximations anyway — exactness is
            // asserted on bytes and keys, packets within tolerance.
            let mut events: Vec<(bool, u64, Flags)> = Vec::new();
            events.push((true, 0, Flags::SYN));
            events.push((false, 0, Flags::SYN.union(Flags::ACK)));
            for (i, c) in fwd_chunks.iter().enumerate() {
                let _ = i;
                events.push((true, *c, Flags::ACK));
            }
            for c in &rev_chunks {
                events.push((false, *c, Flags::ACK));
            }
            events.push((true, 0, Flags::FIN.union(Flags::ACK)));
            events.push((false, 0, Flags::FIN.union(Flags::ACK)));

            let n = events.len() as i64;
            let mut fwd_seq = 1u32;
            let mut rev_seq = 1u32;
            for (i, (is_fwd, len, flags)) in events.into_iter().enumerate() {
                let ts = f.ts.add_micros(f.duration_micros * i as i64 / n.max(1));
                let payload = vec![0xabu8; len as usize];
                let frame = if is_fwd {
                    let fr = packet::build_tcp(fwd, fwd_seq, rev_seq, flags, &payload);
                    fwd_seq = fwd_seq.wrapping_add(len as u32);
                    fr
                } else {
                    let fr = packet::build_tcp(rev, rev_seq, fwd_seq, flags, &payload);
                    rev_seq = rev_seq.wrapping_add(len as u32);
                    fr
                };
                out.push((ts, frame));
            }
        }
        Proto::Udp | Proto::Other(_) => {
            // Interleave directions: fwd, rev, fwd, rev, …, then whatever
            // remains of the longer side.
            let mut order: Vec<(bool, u64)> = Vec::new();
            let common = fwd_chunks.len().min(rev_chunks.len());
            for i in 0..common {
                order.push((true, fwd_chunks[i]));
                order.push((false, rev_chunks[i]));
            }
            for &c in &fwd_chunks[common..] {
                order.push((true, c));
            }
            for &c in &rev_chunks[common..] {
                order.push((false, c));
            }
            let total = order.len();
            for (i, (is_fwd, len)) in order.into_iter().enumerate() {
                let ts =
                    f.ts.add_micros(f.duration_micros * i as i64 / total.max(1) as i64);
                let payload = vec![0xcdu8; len as usize];
                let frame = if is_fwd {
                    packet::build_udp(fwd, &payload)
                } else {
                    packet::build_udp(rev, &payload)
                };
                out.push((ts, frame));
            }
        }
    }
    out
}

/// Render many flows, merge-sort by timestamp, and feed them through the
/// assembler; returns the re-extracted flow records.
///
/// Frames rendered by [`render_flow`] always parse, so the only `Err`
/// this can return is a bug in the renderer — but the assembler path is
/// also used under fault injection, where damaged frames are expected,
/// so the parse failure propagates as a typed [`nettrace::Error`]
/// instead of a panic.
pub fn roundtrip_through_assembler(
    flows: &[FlowRecord],
    device_mac_of: impl Fn(&FlowRecord) -> MacAddr,
) -> nettrace::Result<Vec<FlowRecord>> {
    let mut frames: Vec<(Timestamp, Vec<u8>)> = Vec::new();
    for f in flows {
        frames.extend(render_flow(f, device_mac_of(f)));
    }
    frames.sort_by_key(|(ts, _)| *ts);
    let mut asm = FlowAssembler::with_defaults();
    for (ts, frame) in &frames {
        asm.push_frame(*ts, frame)?;
    }
    Ok(asm.flush())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_tcp() -> FlowRecord {
        FlowRecord {
            ts: Timestamp::from_secs(1_580_600_000),
            duration_micros: 30_000_000,
            orig: Ipv4Addr::new(10, 40, 1, 9),
            orig_port: 51_000,
            resp: Ipv4Addr::new(34, 18, 0, 80),
            resp_port: 443,
            proto: Proto::Tcp,
            orig_bytes: 4_200,
            resp_bytes: 300_000,
            orig_pkts: 0,
            resp_pkts: 0,
        }
    }

    #[test]
    fn tcp_roundtrip_preserves_key_and_bytes() {
        let f = sample_tcp();
        let mac = MacAddr::new(0, 0x1a, 0x2b, 7, 7, 7);
        let got = roundtrip_through_assembler(&[f], |_| mac).unwrap();
        assert_eq!(got.len(), 1);
        let g = &got[0];
        assert_eq!(g.key(), f.key());
        assert_eq!(g.orig_bytes, f.orig_bytes);
        assert_eq!(g.resp_bytes, f.resp_bytes);
        assert_eq!(g.ts, f.ts);
    }

    #[test]
    fn udp_roundtrip_preserves_bytes() {
        let f = FlowRecord {
            proto: Proto::Udp,
            resp_port: 8801,
            orig_bytes: 50_000,
            resp_bytes: 70_000,
            ..sample_tcp()
        };
        let mac = MacAddr::new(0, 0x1a, 0x2b, 8, 8, 8);
        let got = roundtrip_through_assembler(&[f], |_| mac).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].orig_bytes + got[0].resp_bytes, 120_000);
        assert_eq!(got[0].key().proto, Proto::Udp);
    }

    #[test]
    fn zero_payload_flow_renders_handshake_only() {
        let f = FlowRecord {
            orig_bytes: 0,
            resp_bytes: 0,
            ..sample_tcp()
        };
        let mac = MacAddr::new(0, 0, 0, 1, 2, 3);
        let pkts = render_flow(&f, mac);
        assert_eq!(pkts.len(), 4); // SYN, SYN-ACK, FIN, FIN
    }

    #[test]
    fn large_flows_render_bounded_packet_counts() {
        let f = FlowRecord {
            orig_bytes: 2_000_000,
            resp_bytes: 90_000_000, // a game download
            ..sample_tcp()
        };
        let pkts = render_flow(&f, MacAddr::new(0, 0, 0, 1, 2, 3));
        assert!(pkts.len() < 4_000, "{} packets", pkts.len());
        // Byte accounting still exact.
        let got = roundtrip_through_assembler(&[f], |_| MacAddr::new(0, 0, 0, 9, 9, 9)).unwrap();
        assert_eq!(got[0].orig_bytes, 2_000_000);
        assert_eq!(got[0].resp_bytes, 90_000_000);
    }

    #[test]
    fn chunk_size_bounds() {
        assert_eq!(chunk_size(0), MSS);
        assert_eq!(chunk_size(100_000), MSS);
        assert_eq!(chunk_size(10_000_000), 10_000);
        assert_eq!(chunk_size(1_000_000_000), MAX_SEGMENT);
    }

    #[test]
    fn timestamps_span_duration_in_order() {
        let f = sample_tcp();
        let pkts = render_flow(&f, MacAddr::new(0, 0, 0, 1, 2, 3));
        let mut prev = Timestamp::from_micros(i64::MIN);
        for (ts, _) in &pkts {
            assert!(*ts >= prev);
            prev = *ts;
            assert!(*ts >= f.ts && *ts <= f.end());
        }
    }
}
