//! Trace materialization: turning the behavioural model into flows, DNS
//! queries, DHCP leases and User-Agent sightings, one day at a time.
//!
//! [`CampusSim::day_trace`] is a pure function of (config, day): any day
//! can be generated on any thread in any order, and two calls agree bit
//! for bit. The outputs are the *raw* inputs the measurement pipeline
//! consumes — flows are keyed by dynamic IP (not device), so DHCP
//! normalization is doing real work.

use crate::config::SimConfig;
use crate::domains::{ServiceDirectory, ServiceId};
use crate::model::{self, DiurnalKind, SocialApp};
use crate::population::{Device, DeviceOs, Population, Student, TrueKind};
use crate::rng::{self, Stream};
use crate::scenario::Scenario;
use appsig::App;
use dhcplog::{LeaseAction, LeaseEvent};
use dnslog::DnsQuery;
use nettrace::flow::{FlowRecord, Proto};
use nettrace::ip::campus;
use nettrace::time::Day;
use nettrace::{DeviceId, Timestamp};
use rand::rngs::SmallRng;
use rand::Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A User-Agent observation from cleartext HTTP metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UaSighting {
    /// When the string was observed.
    pub ts: Timestamp,
    /// The observing device (normalized).
    pub device: DeviceId,
    /// The raw string.
    pub ua: &'static str,
}

/// Everything the tap collected on one day.
#[derive(Debug, Default)]
pub struct DayTrace {
    /// Flow records, sorted by start time.
    pub flows: Vec<FlowRecord>,
    /// DNS query log, sorted by time.
    pub dns: Vec<DnsQuery>,
    /// DHCP lease events, sorted by time.
    pub leases: Vec<LeaseEvent>,
    /// User-Agent sightings.
    pub ua: Vec<UaSighting>,
}

/// Generation tallies for one [`CampusSim::stream_day`] call.
///
/// The generator is the pipeline's upstream tap: these counts are what
/// an operator compares against the downstream attribution counters to
/// verify nothing was dropped in between. The study driver publishes
/// them as `gen.*` metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DayGenStats {
    /// Devices on campus this day (owner not departed).
    pub devices_present: u64,
    /// Present devices that actually generated traffic sessions.
    pub devices_active: u64,
    /// Flow records emitted.
    pub flows: u64,
    /// DNS queries emitted.
    pub dns_queries: u64,
    /// DHCP lease events emitted.
    pub lease_events: u64,
    /// User-Agent sightings emitted.
    pub ua_sightings: u64,
}

impl std::ops::AddAssign for DayGenStats {
    fn add_assign(&mut self, o: DayGenStats) {
        self.devices_present += o.devices_present;
        self.devices_active += o.devices_active;
        self.flows += o.flows;
        self.dns_queries += o.dns_queries;
        self.lease_events += o.lease_events;
        self.ua_sightings += o.ua_sightings;
    }
}

/// A consumer of one day's event stream.
///
/// [`CampusSim::stream_day`] drives a `DaySink` device by device: for
/// each present device it delivers that device's lease events, then its
/// DNS queries, then its flows, then its User-Agent sightings, each
/// group in timestamp order. The stream is therefore *device-major*:
/// timestamps are monotone within a device but not across devices.
/// That is exactly the [`nettrace::Stage`] contract — every event a
/// flow depends on (its device's lease bracket, its service's DNS
/// resolution) arrives before the flow itself, and day-level results
/// must be invariant to device interleaving.
pub trait DaySink {
    /// One DHCP lease event.
    fn lease(&mut self, event: LeaseEvent);
    /// One DNS query with its answer set.
    fn dns(&mut self, query: DnsQuery);
    /// One flow record.
    fn flow(&mut self, flow: FlowRecord);
    /// One User-Agent sighting.
    fn ua(&mut self, sighting: UaSighting);
}

/// A single event from the day stream, for closure-based sinks.
#[derive(Debug, Clone)]
pub enum DayEvent {
    /// A DHCP lease event.
    Lease(LeaseEvent),
    /// A DNS query.
    Dns(DnsQuery),
    /// A flow record.
    Flow(FlowRecord),
    /// A User-Agent sighting.
    Ua(UaSighting),
}

/// Any `FnMut(DayEvent)` is a sink, so ad-hoc consumers need no type.
impl<F: FnMut(DayEvent)> DaySink for F {
    fn lease(&mut self, event: LeaseEvent) {
        self(DayEvent::Lease(event));
    }
    fn dns(&mut self, query: DnsQuery) {
        self(DayEvent::Dns(query));
    }
    fn flow(&mut self, flow: FlowRecord) {
        self(DayEvent::Flow(flow));
    }
    fn ua(&mut self, sighting: UaSighting) {
        self(DayEvent::Ua(sighting));
    }
}

/// Collecting into a [`DayTrace`] is the batch adapter over the stream.
/// Events land unsorted here; [`CampusSim::day_trace`] restores the
/// global timestamp order afterwards.
impl DaySink for DayTrace {
    fn lease(&mut self, event: LeaseEvent) {
        self.leases.push(event);
    }
    fn dns(&mut self, query: DnsQuery) {
        self.dns.push(query);
    }
    fn flow(&mut self, flow: FlowRecord) {
        self.flows.push(flow);
    }
    fn ua(&mut self, sighting: UaSighting) {
        self.ua.push(sighting);
    }
}

/// The synthetic campus — the whole of it, or one population shard.
pub struct CampusSim {
    cfg: SimConfig,
    /// The resolved scenario, cached once so the per-flow hot path
    /// never re-resolves it.
    scenario: Scenario,
    /// Effective year-over-year growth (scenario override or config knob).
    yoy: f64,
    population: Population,
    directory: Arc<ServiceDirectory>,
}

impl CampusSim {
    /// Build the campus for a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let population = Population::build(&cfg);
        let directory = Arc::new(ServiceDirectory::build());
        Self::for_shard(cfg, population, directory)
    }

    /// Build a campus over one population shard (or any pre-built
    /// population), sharing the service directory across shards. The
    /// generator keys every RNG stream on global device indices, so a
    /// shard sim emits bit-identically to the same devices inside a
    /// monolithic sim.
    pub fn for_shard(
        cfg: SimConfig,
        population: Population,
        directory: Arc<ServiceDirectory>,
    ) -> Self {
        let scenario = cfg.resolved_scenario();
        let yoy = scenario.effective_yoy(cfg.yoy_growth);
        CampusSim {
            cfg,
            scenario,
            yoy,
            population,
            directory,
        }
    }

    /// A clonable handle on the shared service directory (for building
    /// further shard sims without rebuilding the world).
    pub fn directory_handle(&self) -> Arc<ServiceDirectory> {
        Arc::clone(&self.directory)
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The resolved scenario this campus runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The population (ground truth).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The service directory (world).
    pub fn directory(&self) -> &ServiceDirectory {
        &self.directory
    }

    /// The dynamic IP a device holds on `day`. A daily rotating
    /// permutation of the /16 pool: every device's address changes at
    /// midnight, so the DHCP interval index is genuinely exercised.
    pub fn device_ip(&self, device_index: u32, day: Day) -> Ipv4Addr {
        let pool = campus::residential_pool();
        let capacity = pool.size() - 2; // skip network and broadcast-ish edges
        let idx = (device_index as u64 + day.0 as u64 * 7919) % capacity as u64;
        pool.nth(1 + idx as u32)
    }

    /// Generate one day of traffic as a materialized [`DayTrace`], each
    /// event class globally timestamp-sorted. Thin adapter over
    /// [`stream_day`](Self::stream_day), kept for tools that want random
    /// access; the measurement pipeline itself consumes the stream.
    pub fn day_trace(&self, day: Day) -> DayTrace {
        let mut out = DayTrace::default();
        self.stream_day(day, &mut out);
        out.flows.sort_by_key(|f| (f.ts, f.orig, f.orig_port));
        out.dns.sort_by_key(|q| (q.ts, q.device));
        out.leases.sort_by_key(|l| (l.ts, l.ip));
        out.ua.sort_by_key(|u| (u.ts, u.device));
        out
    }

    /// Generate one day of traffic directly into `sink`, never holding
    /// more than a single device's events in memory. Deterministic;
    /// thread-safe; ordering contract documented on [`DaySink`].
    /// Returns the day's generation tallies so callers can report
    /// generated-session counts without re-counting the stream.
    pub fn stream_day<S: DaySink>(&self, day: Day, sink: &mut S) -> DayGenStats {
        let mut stats = DayGenStats::default();
        let mut scratch = DayTrace::default();
        // Busy time of synthesis proper (device_day), separated from
        // time the sink spends consuming what we emit. Checked once per
        // day, so the untraced hot path pays nothing per device.
        let mut gen_busy_ns = lockdown_obs::trace::enabled().then_some(0u64);
        for device in &self.population.devices {
            if !self.population.device_present(device, day) {
                continue;
            }
            stats.devices_present += 1;
            let student = self.population.owner_of(device);
            match &mut gen_busy_ns {
                Some(busy) => {
                    let t0 = std::time::Instant::now();
                    self.device_day(device, student, day, &mut scratch);
                    *busy += t0.elapsed().as_nanos() as u64;
                }
                None => self.device_day(device, student, day, &mut scratch),
            }
            if scratch.flows.is_empty() && scratch.leases.is_empty() {
                continue;
            }
            stats.devices_active += 1;
            stats.flows += scratch.flows.len() as u64;
            stats.dns_queries += scratch.dns.len() as u64;
            stats.lease_events += scratch.leases.len() as u64;
            stats.ua_sightings += scratch.ua.len() as u64;
            // Per-device timestamp order. A device's flows all share one
            // source IP for the day, so (ts, orig_port) is as fine a key
            // as the global (ts, orig, orig_port) sort in `day_trace`.
            scratch.flows.sort_by_key(|f| (f.ts, f.orig_port));
            scratch.dns.sort_by_key(|q| q.ts);
            scratch.leases.sort_by_key(|l| l.ts);
            scratch.ua.sort_by_key(|u| u.ts);
            for event in scratch.leases.drain(..) {
                sink.lease(event);
            }
            for query in scratch.dns.drain(..) {
                sink.dns(query);
            }
            for flow in scratch.flows.drain(..) {
                sink.flow(flow);
            }
            for sighting in scratch.ua.drain(..) {
                sink.ua(sighting);
            }
        }
        if let Some(busy) = gen_busy_ns {
            lockdown_obs::trace::aggregate(
                "stage",
                "generate",
                busy,
                &[("devices", stats.devices_active), ("flows", stats.flows)],
            );
        }
        stats
    }

    fn device_day(&self, device: &Device, student: &Student, day: Day, out: &mut DayTrace) {
        let mut srng = rng::rng_for(
            self.cfg.seed,
            Stream::Sessions,
            day.0 as u64,
            device.index as u64,
        );
        let post = self.scenario.post_shutdown(day);
        let weekday = day.weekday();
        if srng.gen::<f64>() >= model::active_probability(device.kind, weekday, post) {
            return;
        }

        let ip = self.device_ip(device.index, day);
        // Lease bracket for the day.
        out.leases.push(LeaseEvent {
            ts: day.start(),
            action: LeaseAction::Assign,
            ip,
            mac: device.mac,
        });
        out.leases.push(LeaseEvent {
            ts: day.start().add_secs(12 * 3600),
            action: LeaseAction::Renew,
            ip,
            mac: device.mac,
        });
        out.leases.push(LeaseEvent {
            ts: day.end().add_micros(-1),
            action: LeaseAction::Release,
            ip,
            mac: device.mac,
        });

        let mut ctx = DeviceDayCtx {
            sim: self,
            device,
            student,
            day,
            ip,
            post,
            weekend: weekday.is_weekend(),
            srng,
            frng: rng::rng_for(
                self.cfg.seed,
                Stream::Flows,
                day.0 as u64,
                device.index as u64,
            ),
            used_services: Vec::new(),
        };

        match device.kind {
            TrueKind::Phone | TrueKind::Companion => {
                ctx.background_web(out);
                ctx.social(out);
                if device.kind == TrueKind::Phone && student.devices.len() == 1 {
                    // Phone-only students attend class by phone.
                    ctx.zoom(out);
                }
                ctx.maybe_steam(out);
            }
            TrueKind::Laptop | TrueKind::Desktop => {
                ctx.background_web(out);
                if self.zoom_device_of(student) == Some(device.index) {
                    ctx.zoom(out);
                }
                ctx.maybe_steam(out);
            }
            TrueKind::Iot => ctx.iot(out),
            TrueKind::Switch => ctx.switch_console(out),
        }

        ctx.emit_dns(out);
        ctx.emit_ua(out);
    }

    /// The device a student attends Zoom classes on: first laptop, else
    /// first desktop, else first phone.
    fn zoom_device_of(&self, student: &Student) -> Option<u32> {
        let pick = |kind: TrueKind| {
            student
                .devices
                .iter()
                .copied()
                .find(|&i| self.population.device(i).kind == kind)
        };
        pick(TrueKind::Laptop)
            .or_else(|| pick(TrueKind::Desktop))
            .or_else(|| pick(TrueKind::Phone))
    }
}

/// Per-device-day generation context.
struct DeviceDayCtx<'a> {
    sim: &'a CampusSim,
    device: &'a Device,
    student: &'a Student,
    day: Day,
    ip: Ipv4Addr,
    post: bool,
    weekend: bool,
    srng: SmallRng,
    frng: SmallRng,
    used_services: Vec<(ServiceId, Timestamp)>,
}

impl<'a> DeviceDayCtx<'a> {
    fn seed(&self) -> u64 {
        self.sim.cfg.seed
    }

    /// Sample a start timestamp from a diurnal profile.
    fn sample_start(&mut self, kind: DiurnalKind) -> Timestamp {
        let weights: Vec<f64> = (0..24)
            .map(|h| model::diurnal_weight(kind, self.post, self.weekend, h))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = self.srng.gen::<f64>() * total;
        let mut hour = 23;
        for (h, w) in weights.iter().enumerate() {
            if u < *w {
                hour = h;
                break;
            }
            u -= w;
        }
        self.day
            .start()
            .add_secs(hour as i64 * 3600 + self.srng.gen_range(0..3600))
    }

    /// Emit one flow to a service, clamped inside the day.
    #[allow(clippy::too_many_arguments)]
    fn emit_flow(
        &mut self,
        out: &mut DayTrace,
        service: ServiceId,
        proto: Proto,
        port: u16,
        start: Timestamp,
        dur_secs: f64,
        tx: u64,
        rx: u64,
    ) {
        let start = start.max(self.day.start()).min(self.day.end().add_secs(-2));
        let max_dur = (self.day.end().delta_micros(start) - 1_000_000).max(1_000_000);
        let dur_micros = ((dur_secs * 1e6) as i64).clamp(500_000, max_dur);
        let remote = self.sim.directory.pick_ip(service, self.frng.gen::<u64>());
        let tx = tx.max(200);
        let rx = rx.max(200);
        out.flows.push(FlowRecord {
            ts: start,
            duration_micros: dur_micros,
            orig: self.ip,
            orig_port: self.frng.gen_range(49_152..65_000),
            resp: remote,
            resp_port: port,
            proto,
            orig_bytes: tx,
            resp_bytes: rx,
            orig_pkts: (tx / 1_200 + 1) as u32,
            resp_pkts: (rx / 1_200 + 1) as u32,
        });
        self.note_service(service, start);
    }

    fn note_service(&mut self, service: ServiceId, ts: Timestamp) {
        match self.used_services.iter_mut().find(|(s, _)| *s == service) {
            Some(entry) => {
                if ts < entry.1 {
                    entry.1 = ts;
                }
            }
            None => self.used_services.push((service, ts)),
        }
    }

    /// Pick a background service from the device's zipf-ish home set.
    fn pick_background(&mut self, foreign: bool) -> ServiceId {
        let pool = if foreign {
            self.sim.directory.background_foreign()
        } else {
            self.sim.directory.background_us()
        };
        let breadth = self.sim.scenario.web_breadth(self.day).min(pool.len());
        // Quadratic skew: low ranks dominate (zipf-like popularity).
        let rank = ((self.srng.gen::<f64>().powi(2)) * breadth as f64) as usize;
        let base = rng::mix(&[
            self.seed(),
            self.device.index as u64,
            if foreign { 1 } else { 0 },
        ]) as usize;
        pool[(base + rank * 37) % pool.len()]
    }

    /// Background web browsing/streaming.
    fn background_web(&mut self, out: &mut DayTrace) {
        let subpop = self.student.subpop;
        let mult = self.sim.scenario.leisure_multiplier(subpop, self.day)
            * model::weekend_volume_factor(self.day.weekday())
            * self.sim.yoy
            * self.student.leisure_factor;
        let lambda = model::web_sessions_per_day(self.device.kind) * mult;
        let n = rng::poisson(&mut self.srng, lambda);
        let foreign_share = model::foreign_web_share(
            subpop,
            rng::unit_hash(
                self.seed(),
                Stream::Population,
                self.student.index as u64,
                77,
            ),
        );
        for _ in 0..n {
            let start = self.sample_start(DiurnalKind::Leisure);
            let minutes =
                rng::exponential(&mut self.srng, model::WEB_SESSION_MINUTES).clamp(0.5, 120.0);
            let bytes = minutes
                * model::web_bytes_per_minute(self.device.kind)
                * self.device.volume_factor
                * rng::lognormal_med(&mut self.srng, 1.0, 0.8);
            let foreign = self.srng.gen::<f64>() < foreign_share;
            let service = self.pick_background(foreign);
            let cdn_bytes = (bytes * model::CDN_SHARE) as u64;
            let main_bytes = bytes as u64 - cdn_bytes;
            self.emit_flow(
                out,
                service,
                Proto::Tcp,
                443,
                start,
                minutes * 60.0,
                main_bytes / 12,
                main_bytes,
            );
            // Page assets ride a CDN (excluded from geolocation).
            if cdn_bytes > 0 {
                let cdns = self.sim.directory.app_services(App::Cdn);
                let cdn = cdns[self.srng.gen_range(0..cdns.len())];
                let cdn_start = start.add_secs(self.srng.gen_range(1..10));
                self.emit_flow(
                    out,
                    cdn,
                    Proto::Tcp,
                    443,
                    cdn_start,
                    minutes * 45.0,
                    cdn_bytes / 20,
                    cdn_bytes,
                );
            }
        }
    }

    /// Social-media sessions (Figure 6 material).
    fn social(&mut self, out: &mut DayTrace) {
        let subpop = self.student.subpop;
        let month = self.day.month();
        for (ai, app) in SocialApp::ALL.into_iter().enumerate() {
            let active_p = model::social_monthly_active_prob(app, subpop, month);
            let active = rng::unit_hash(
                self.seed(),
                Stream::Engagement,
                rng::mix(&[self.device.index as u64, ai as u64, 101]),
                month.index() as u64,
            ) < active_p;
            if !active {
                continue;
            }
            let escalator = rng::unit_hash(
                self.seed(),
                Stream::Engagement,
                rng::mix(&[self.device.index as u64, ai as u64, 202]),
                0,
            ) < model::social_escalator_fraction(app, subpop);
            let sigma = model::social_sigma(app, subpop);
            let engagement = rng::engagement_factor(
                self.seed(),
                self.device.index as u64,
                300 + ai as u64,
                sigma,
            );
            let monthly_hours = self
                .sim
                .scenario
                .social_monthly_hours(app, subpop, escalator, month)
                * engagement;
            let daily_minutes = monthly_hours * 60.0 / month.num_days() as f64;
            let lambda = daily_minutes / model::SOCIAL_SESSION_MINUTES;
            let n = rng::poisson(&mut self.srng, lambda);
            for _ in 0..n {
                let start = self.sample_start(DiurnalKind::Leisure);
                let minutes = rng::exponential(&mut self.srng, model::SOCIAL_SESSION_MINUTES)
                    .clamp(0.5, 90.0);
                let bytes = minutes
                    * model::SOCIAL_BYTES_PER_MINUTE
                    * rng::lognormal_med(&mut self.srng, 1.0, 0.6);
                self.social_session(out, app, start, minutes, bytes as u64);
            }
        }
    }

    /// One social session: overlapping flows across the app's domains
    /// (exactly the structure §5.2's stitcher handles).
    fn social_session(
        &mut self,
        out: &mut DayTrace,
        app: SocialApp,
        start: Timestamp,
        minutes: f64,
        bytes: u64,
    ) {
        let dur = minutes * 60.0;
        match app {
            SocialApp::Facebook => {
                // 2–3 flows, all on Facebook-family domains.
                let services = self.sim.directory.app_services(App::Facebook).to_vec();
                let n = 2 + usize::from(self.srng.gen::<f64>() < 0.5);
                for j in 0..n {
                    let svc = services[self.srng.gen_range(0..services.len())];
                    let offset = self.srng.gen_range(0..12) as i64 * j as i64;
                    let share = if j == 0 {
                        bytes * 6 / 10
                    } else {
                        bytes * 4 / 10 / (n as u64 - 1).max(1)
                    };
                    let flow_start = start.add_secs(offset);
                    self.emit_flow(
                        out,
                        svc,
                        Proto::Tcp,
                        443,
                        flow_start,
                        dur - offset as f64,
                        share / 15,
                        share,
                    );
                }
            }
            SocialApp::Instagram => {
                // Instagram rides Facebook-family domains *plus* at least
                // one Instagram-only domain — the disambiguation marker.
                let fb = self.sim.directory.app_services(App::Facebook).to_vec();
                let ig = self.sim.directory.app_services(App::Instagram).to_vec();
                let fb_svc = fb[self.srng.gen_range(0..fb.len())];
                let ig_svc = ig[self.srng.gen_range(0..ig.len())];
                self.emit_flow(
                    out,
                    ig_svc,
                    Proto::Tcp,
                    443,
                    start,
                    dur,
                    bytes / 20,
                    bytes * 7 / 10,
                );
                let fb_start = start.add_secs(self.srng.gen_range(1..15));
                self.emit_flow(
                    out,
                    fb_svc,
                    Proto::Tcp,
                    443,
                    fb_start,
                    dur * 0.8,
                    bytes / 40,
                    bytes * 3 / 10,
                );
            }
            SocialApp::TikTok => {
                // Video bytes come from the US CDN edge; the session also
                // touches an API/logging domain (which may sit abroad —
                // byteoversea — but carries few bytes, so heavy TikTok
                // use does not drag the geolocation midpoint offshore).
                let services = self.sim.directory.app_services(App::TikTok).to_vec();
                let cdn = services[2]; // v16.tiktokcdn.com (US edge)
                self.emit_flow(
                    out,
                    cdn,
                    Proto::Tcp,
                    443,
                    start,
                    dur,
                    bytes / 50,
                    bytes * 85 / 100,
                );
                let other = services[self.srng.gen_range(0..services.len())];
                self.emit_flow(
                    out,
                    other,
                    Proto::Tcp,
                    443,
                    start.add_secs(5),
                    dur - 5.0,
                    bytes / 100,
                    bytes * 15 / 100,
                );
            }
        }
    }

    /// Zoom classes (Figure 5 material).
    fn zoom(&mut self, out: &mut DayTrace) {
        let mut hours =
            self.sim.scenario.zoom_hours(self.day) * rng::lognormal_med(&mut self.srng, 1.0, 0.4);
        // Not every student attends everything.
        if self.srng.gen::<f64>() < 0.12 {
            return;
        }
        let services = self.sim.directory.app_services(App::Zoom).to_vec();
        while hours > 0.05 {
            let meeting = self.srng.gen_range(0.6..1.4f64).min(hours.max(0.1));
            hours -= meeting;
            let start = self.sample_start(DiurnalKind::Class);
            let svc = services[self.srng.gen_range(0..services.len())];
            let bytes = (meeting
                * model::ZOOM_BYTES_PER_HOUR
                * rng::lognormal_med(&mut self.srng, 1.0, 0.5)) as u64;
            // Media rides UDP 8801; signaling is a small TCP 443 flow.
            self.emit_flow(
                out,
                svc,
                Proto::Udp,
                8801,
                start,
                meeting * 3600.0,
                bytes * 45 / 100,
                bytes * 55 / 100,
            );
            self.emit_flow(
                out,
                svc,
                Proto::Tcp,
                443,
                start,
                meeting * 3600.0,
                200_000,
                400_000,
            );
        }
    }

    /// Steam (Figure 7 material). Day-local realization of a monthly plan.
    fn maybe_steam(&mut self, out: &mut DayTrace) {
        if !matches!(
            self.device.kind,
            TrueKind::Laptop | TrueKind::Desktop | TrueKind::Companion
        ) {
            return;
        }
        let subpop = self.student.subpop;
        let month = self.day.month();
        let sm = self.sim.scenario.steam_month(subpop, month);
        let active_month = rng::unit_hash(
            self.seed(),
            Stream::Engagement,
            rng::mix(&[self.device.index as u64, 400]),
            month.index() as u64,
        ) < sm.active_prob;
        if !active_month {
            return;
        }
        // Gaming days: ~8 expected per active month.
        let target_days = 8.0f64.min(month.num_days() as f64);
        let p_day = target_days / month.num_days() as f64;
        if rng::unit_hash(
            self.seed(),
            Stream::Engagement,
            rng::mix(&[self.device.index as u64, 401, month.index() as u64]),
            self.day.0 as u64,
        ) >= p_day
        {
            return;
        }
        let gamer_boost = if self.student.steam_gamer { 1.5 } else { 0.7 };
        let m_bytes = sm.median_bytes
            * gamer_boost
            * rng::engagement_factor(
                self.seed(),
                self.device.index as u64,
                410 + month.index() as u64,
                model::STEAM_BYTES_SIGMA,
            );
        let m_conns = sm.median_conns
            * rng::engagement_factor(
                self.seed(),
                self.device.index as u64,
                420 + month.index() as u64,
                model::STEAM_CONNS_SIGMA,
            );
        let day_bytes = (m_bytes / target_days).max(1_000.0) as u64;
        let day_conns = ((m_conns / target_days).round() as u64).max(1);
        let services = self.sim.directory.app_services(App::Steam).to_vec();
        let start = self.sample_start(DiurnalKind::Gaming);
        // One download-heavy flow plus (day_conns - 1) matchmaking pings.
        let svc = services[self.srng.gen_range(0..services.len())];
        let dl_dur = self.srng.gen_range(600.0..7200.0);
        self.emit_flow(
            out,
            svc,
            Proto::Tcp,
            443,
            start,
            dl_dur,
            day_bytes / 40,
            day_bytes * 85 / 100,
        );
        let rest = (day_bytes * 15 / 100) / day_conns.max(1);
        for k in 1..day_conns {
            let svc = services[self.srng.gen_range(0..services.len())];
            let ping_start = start.add_secs(self.srng.gen_range(0..5_400));
            let ping_dur = self.srng.gen_range(30.0..900.0);
            self.emit_flow(
                out,
                svc,
                Proto::Udp,
                27_015 + (k % 20) as u16,
                ping_start,
                ping_dur,
                rest / 3 + 1,
                rest * 2 / 3 + 1,
            );
        }
    }

    /// Nintendo Switch (Figure 8 material).
    fn switch_console(&mut self, out: &mut DayTrace) {
        let mult = self.sim.scenario.switch_multiplier(self.day);
        let hours = model::SWITCH_GAMEPLAY_HOURS
            * mult
            * self.device.volume_factor.min(4.0)
            * rng::lognormal_med(&mut self.srng, 1.0, 0.6);
        let services = self
            .sim
            .directory
            .app_services(App::SwitchGameplay)
            .to_vec();
        let n_sessions = 1 + (hours / 1.5) as usize;
        for _ in 0..n_sessions {
            let start = self.sample_start(DiurnalKind::Gaming);
            let h = hours / n_sessions as f64;
            let bytes = (h
                * model::SWITCH_GAMEPLAY_BYTES_PER_HOUR
                * rng::lognormal_med(&mut self.srng, 1.0, 0.4)) as u64;
            let svc = services[self.srng.gen_range(0..services.len())];
            self.emit_flow(
                out,
                svc,
                Proto::Udp,
                443,
                start,
                h * 3600.0,
                bytes * 45 / 100,
                bytes * 55 / 100,
            );
        }
        // Updates / game downloads (filtered out of Figure 8).
        let svc_services = self
            .sim
            .directory
            .app_services(App::SwitchServices)
            .to_vec();
        let is_launch_day = self.sim.scenario.policy.console_launch_day == Some(self.day.0);
        let fresh_console = self.device.acquired == Some(self.day);
        let update_p = if is_launch_day {
            0.5
        } else if fresh_console {
            1.0
        } else {
            model::SWITCH_UPDATE_RATE
        };
        if self.srng.gen::<f64>() < update_p {
            let bytes =
                (model::SWITCH_UPDATE_BYTES * rng::lognormal_med(&mut self.srng, 1.0, 0.7)) as u64;
            let svc = svc_services[self.srng.gen_range(0..svc_services.len())];
            let start = self.sample_start(DiurnalKind::Gaming);
            let dl_dur = self.srng.gen_range(300.0..3_000.0);
            self.emit_flow(out, svc, Proto::Tcp, 443, start, dl_dur, bytes / 100, bytes);
        }
    }

    /// IoT backend chatter.
    fn iot(&mut self, out: &mut DayTrace) {
        let backends = self.sim.directory.iot_backends();
        let backend = backends[self.device.index as usize % backends.len()];
        let total = model::IOT_BYTES_PER_DAY
            * self.device.volume_factor
            * rng::lognormal_med(&mut self.srng, 1.0, 0.4);
        let n = rng::poisson(&mut self.srng, model::IOT_SESSIONS_PER_DAY).max(1);
        let backend_bytes = (total * model::IOT_BACKEND_SHARE) as u64;
        let other_bytes = (total * (1.0 - model::IOT_BACKEND_SHARE)) as u64;
        for k in 0..n {
            let start = self.sample_start(DiurnalKind::Flat);
            let share = backend_bytes / n;
            let dur = self.srng.gen_range(5.0..120.0);
            self.emit_flow(
                out,
                backend,
                Proto::Tcp,
                443,
                start,
                dur,
                share / 3 + 1,
                share * 2 / 3 + 1,
            );
            let _ = k;
        }
        // A little non-backend traffic (time sync, firmware CDN).
        let service = self.pick_background(false);
        let start = self.sample_start(DiurnalKind::Flat);
        self.emit_flow(
            out,
            service,
            Proto::Udp,
            123,
            start,
            10.0,
            other_bytes / 2 + 1,
            other_bytes / 2 + 1,
        );
    }

    /// Emit the day's DNS log: one query per service used, just before
    /// its first flow.
    fn emit_dns(&mut self, out: &mut DayTrace) {
        let mut rng = rng::rng_for(
            self.seed(),
            Stream::Dns,
            self.day.0 as u64,
            self.device.index as u64,
        );
        for (service, first_ts) in &self.used_services {
            let svc = self.sim.directory.service(*service);
            // The full rrset: the client connects to an address it was
            // handed, so every flow to this service is resolvable.
            out.dns.push(DnsQuery {
                ts: first_ts.add_micros(-(rng.gen_range(100_000..3_000_000))),
                device: self.device.id,
                qname: svc.domain,
                answers: svc.ips.clone(),
            });
        }
    }

    /// Emit User-Agent sightings for UA-visible devices.
    fn emit_ua(&mut self, out: &mut DayTrace) {
        if !self.device.ua_visible || self.used_services.is_empty() {
            return;
        }
        let mut rng = rng::rng_for(
            self.seed(),
            Stream::UserAgents,
            self.day.0 as u64,
            self.device.index as u64,
        );
        if rng.gen::<f64>() > 0.55 {
            return;
        }
        let ua = ua_for(self.device.os);
        let Some(ua) = ua else { return };
        let (_, ts) = (self.used_services[0].0, self.used_services[0].1);
        out.ua.push(UaSighting {
            ts,
            device: self.device.id,
            ua,
        });
    }
}

/// A representative User-Agent string per OS.
pub fn ua_for(os: DeviceOs) -> Option<&'static str> {
    match os {
        DeviceOs::Ios => Some(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.0.5 Mobile/15E148 Safari/604.1",
        ),
        DeviceOs::Android => Some(
            "Mozilla/5.0 (Linux; Android 10; Pixel 3) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/80.0.3987.99 Mobile Safari/537.36",
        ),
        DeviceOs::Windows => Some(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/80.0.3987.122 Safari/537.36",
        ),
        DeviceOs::MacOs => Some(
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.0.5 Safari/605.1.15",
        ),
        DeviceOs::Linux => Some("Mozilla/5.0 (X11; Linux x86_64; rv:73.0) Gecko/20100101 Firefox/73.0"),
        DeviceOs::None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::ip::campus;

    fn tiny_sim() -> CampusSim {
        CampusSim::new(SimConfig {
            scale: 0.01, // 130 students
            ..Default::default()
        })
    }

    #[test]
    fn day_trace_is_deterministic() {
        let sim = tiny_sim();
        let a = sim.day_trace(Day(10));
        let b = sim.day_trace(Day(10));
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.dns, b.dns);
        assert_eq!(a.leases, b.leases);
        assert_eq!(a.ua, b.ua);
        assert!(!a.flows.is_empty());
    }

    #[test]
    fn stream_day_matches_trace_and_orders_per_device() {
        use std::collections::{HashMap, HashSet};
        let sim = tiny_sim();
        let day = Day(40);

        let mut streamed = DayTrace::default();
        let mut leased: HashSet<Ipv4Addr> = HashSet::new();
        let mut last_flow_ts: HashMap<Ipv4Addr, Timestamp> = HashMap::new();
        sim.stream_day(day, &mut |e: DayEvent| match e {
            DayEvent::Lease(l) => {
                leased.insert(l.ip);
                streamed.leases.push(l);
            }
            DayEvent::Dns(q) => streamed.dns.push(q),
            DayEvent::Flow(f) => {
                // The stream contract: a device's lease bracket precedes
                // its flows, and its flows arrive in timestamp order.
                assert!(leased.contains(&f.orig), "flow before its lease");
                if let Some(prev) = last_flow_ts.insert(f.orig, f.ts) {
                    assert!(f.ts >= prev, "per-device flow order violated");
                }
                streamed.flows.push(f);
            }
            DayEvent::Ua(u) => streamed.ua.push(u),
        });

        // Same events as the batch trace, just differently interleaved.
        streamed.flows.sort_by_key(|f| (f.ts, f.orig, f.orig_port));
        streamed.dns.sort_by_key(|q| (q.ts, q.device));
        streamed.leases.sort_by_key(|l| (l.ts, l.ip));
        streamed.ua.sort_by_key(|u| (u.ts, u.device));
        let batch = sim.day_trace(day);
        assert_eq!(streamed.flows, batch.flows);
        assert_eq!(streamed.dns, batch.dns);
        assert_eq!(streamed.leases, batch.leases);
        assert_eq!(streamed.ua, batch.ua);
    }

    #[test]
    fn stream_day_stats_count_every_emitted_event() {
        let sim = tiny_sim();
        let day = Day(40);
        let mut streamed = DayTrace::default();
        let stats = sim.stream_day(day, &mut streamed);
        assert_eq!(stats.flows, streamed.flows.len() as u64);
        assert_eq!(stats.dns_queries, streamed.dns.len() as u64);
        assert_eq!(stats.lease_events, streamed.leases.len() as u64);
        assert_eq!(stats.ua_sightings, streamed.ua.len() as u64);
        assert!(stats.devices_active > 0);
        assert!(stats.devices_present >= stats.devices_active);
        // Tallies accumulate across days.
        let mut total = stats;
        total += sim.stream_day(Day(41), &mut DayTrace::default());
        assert!(total.flows > stats.flows);
    }

    #[test]
    fn flows_are_sorted_and_in_day_bounds() {
        let sim = tiny_sim();
        let day = Day(40);
        let t = sim.day_trace(day);
        let mut prev = Timestamp::from_micros(i64::MIN);
        for f in &t.flows {
            assert!(f.ts >= prev);
            prev = f.ts;
            assert!(f.ts >= day.start(), "{:?}", f.ts);
            assert!(
                f.end() <= day.end(),
                "flow ends {:?} after day end",
                f.end()
            );
            assert!(campus::is_residential(f.orig));
            assert!(!campus::is_residential(f.resp));
            assert!(f.orig_bytes > 0 && f.resp_bytes > 0);
        }
    }

    #[test]
    fn device_ips_unique_per_day_and_rotate() {
        let sim = tiny_sim();
        let n = sim.population().devices.len() as u32;
        use std::collections::HashSet;
        let day0: HashSet<Ipv4Addr> = (0..n).map(|i| sim.device_ip(i, Day(0))).collect();
        assert_eq!(day0.len(), n as usize, "ip collision on day 0");
        // Rotation: device 0 moves between days.
        assert_ne!(sim.device_ip(0, Day(0)), sim.device_ip(0, Day(1)));
    }

    #[test]
    fn dns_queries_precede_first_flows() {
        let sim = tiny_sim();
        let t = sim.day_trace(Day(20));
        assert!(!t.dns.is_empty());
        // Every flow's remote must be resolvable from some query of the
        // same device at or before flow time (generator invariant).
        use std::collections::HashMap;
        let mut resolved: HashMap<(DeviceId, Ipv4Addr), Timestamp> = HashMap::new();
        for q in &t.dns {
            for ip in &q.answers {
                let e = resolved.entry((q.device, *ip)).or_insert(q.ts);
                if q.ts < *e {
                    *e = q.ts;
                }
            }
        }
        // Spot check: a majority of flows (answers may be subsets).
        let mut hits = 0;
        for f in &t.flows {
            if resolved.keys().any(|(_, ip)| *ip == f.resp) {
                hits += 1;
            }
        }
        assert_eq!(hits, t.flows.len(), "all flows DNS-covered");
    }

    #[test]
    fn leases_cover_every_flow() {
        let sim = tiny_sim();
        let day = Day(30);
        let t = sim.day_trace(day);
        let idx = dhcplog::LeaseIndex::build(&t.leases, dhcplog::DEFAULT_MAX_LEASE_SECS);
        for f in &t.flows {
            assert!(
                idx.lookup(f.orig, f.ts).is_some(),
                "flow at {} from {} has no lease",
                f.ts,
                f.orig
            );
        }
    }

    #[test]
    fn post_shutdown_days_only_have_stayer_traffic() {
        let sim = tiny_sim();
        let t = sim.day_trace(Day(100));
        let idx = dhcplog::LeaseIndex::build(&t.leases, dhcplog::DEFAULT_MAX_LEASE_SECS);
        let stayer_macs: std::collections::HashSet<_> = sim
            .population()
            .devices
            .iter()
            .filter(|d| sim.population().owner_of(d).stays())
            .map(|d| d.mac)
            .collect();
        for f in &t.flows {
            let mac = idx.lookup(f.orig, f.ts).unwrap();
            assert!(stayer_macs.contains(&mac));
        }
    }

    #[test]
    fn zoom_traffic_appears_after_classes_go_online() {
        let sim = tiny_sim();
        let sigs = appsig::study_signatures();
        let zoom_bytes = |day: Day| -> u64 {
            sim.day_trace(day)
                .flows
                .iter()
                .filter(|f| sigs.classify_ip(f.resp) == Some(App::Zoom))
                .map(|f| f.total_bytes())
                .sum()
        };
        let feb = zoom_bytes(Day(11)); // Wednesday Feb 12
        let apr = zoom_bytes(Day(74)); // Wednesday Apr 15
        assert!(
            apr > feb * 5,
            "zoom should explode after 3/30: feb {feb} vs apr {apr}"
        );
    }

    #[test]
    fn ua_sightings_only_from_ua_visible_devices() {
        let sim = tiny_sim();
        let t = sim.day_trace(Day(15));
        let visible: std::collections::HashSet<_> = sim
            .population()
            .devices
            .iter()
            .filter(|d| d.ua_visible)
            .map(|d| d.id)
            .collect();
        assert!(!t.ua.is_empty());
        for s in &t.ua {
            assert!(visible.contains(&s.device));
        }
    }

    #[test]
    fn counterfactual_has_no_zoom_ramp_and_full_population() {
        let cfg = SimConfig {
            scale: 0.01,
            ..Default::default()
        };
        let sim = CampusSim::new(Scenario::counterfactual_of(&cfg));
        let t_apr = sim.day_trace(Day(74));
        let t_feb = sim.day_trace(Day(11));
        // Populations comparable (nobody left).
        let devs = |t: &DayTrace| {
            t.flows
                .iter()
                .map(|f| f.orig)
                .collect::<std::collections::HashSet<_>>()
                .len() as f64
        };
        let ratio = devs(&t_apr) / devs(&t_feb);
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }
}
