//! Deterministic fault injection for the packet path.
//!
//! A four-month unattended capture does not stay clean: pcap files get
//! truncated mid-record, NIC offloads garble headers, syslog drops and
//! mangles DHCP lines, resolvers time out mid-answer. A
//! [`FaultProfile`] reproduces that weather *deterministically*: every
//! corruption decision derives from (profile seed, day, record index)
//! through the same [`crate::rng`] streams the generator uses, so a
//! faulted run is exactly as reproducible as a clean one and a
//! quarantined day replays identically on retry.
//!
//! [`FaultingSink`] is a [`DaySink`] decorator that sits between the
//! generator and the pipeline. Corrupted records take the *real* codec
//! paths — flows are rendered into actual Ethernet/IPv4/TCP frames,
//! damaged, and re-parsed via [`nettrace::packet::parse_frame`] (or
//! round-tripped through a truncated [`nettrace::pcap`] stream); lease
//! events are serialized to their line format, garbled, and re-parsed —
//! so the injected faults exercise exactly the error surface a hostile
//! capture would.

use crate::generator::{DaySink, UaSighting};
use crate::rng::{self, Stream};
use dhcplog::LeaseEvent;
use dnslog::DnsQuery;
use nettrace::flow::{FlowRecord, Proto};
use nettrace::mac::MacAddr;
use nettrace::packet::{self, BuildSpec};
use nettrace::pcap;
use nettrace::tcp::Flags;
use nettrace::time::Day;
use rand::rngs::SmallRng;
use rand::Rng;

/// Seed used by [`FaultProfile::new`] when none is given.
pub const DEFAULT_FAULT_SEED: u64 = 0xfa01_7ed0;

/// A seeded, deterministic description of how to corrupt one run's
/// inputs. Chainable like every options struct in the workspace
/// (DESIGN.md §8):
///
/// ```
/// use campussim::FaultProfile;
///
/// let profile = FaultProfile::new()
///     .frame_corruption(0.01)
///     .lease_corruption(0.002)
///     .panic_on_day(47);
/// assert!(!profile.is_noop());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    seed: u64,
    frame_corrupt_rate: f64,
    lease_corrupt_rate: f64,
    dns_drop_rate: f64,
    dns_duplicate_rate: f64,
    panic_day: Option<u16>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: DEFAULT_FAULT_SEED,
            frame_corrupt_rate: 0.0,
            lease_corrupt_rate: 0.0,
            dns_drop_rate: 0.0,
            dns_duplicate_rate: 0.0,
            panic_day: None,
        }
    }
}

impl FaultProfile {
    /// A profile that injects nothing; chain rate setters onto it.
    pub fn new() -> Self {
        FaultProfile::default()
    }

    /// The standard acceptance profile: 1% frame corruption, 0.2%
    /// lease-line corruption, 1% dropped and 1% duplicated DNS
    /// answers, plus one injected worker panic on shutdown day 47
    /// (first attempt only, so the day succeeds when retried).
    pub fn default_profile() -> Self {
        FaultProfile::new()
            .frame_corruption(0.01)
            .lease_corruption(0.002)
            .dns_answer_drops(0.01)
            .dns_duplicates(0.01)
            .panic_on_day(47)
    }

    /// Look up a profile by CLI name: `"none"` (inject nothing) or
    /// `"default"` (see [`FaultProfile::default_profile`]).
    pub fn named(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::new()),
            "default" => Some(FaultProfile::default_profile()),
            _ => None,
        }
    }

    /// Set the fault seed (independent of the simulation seed, so the
    /// same campus can be replayed under different weather).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of flows whose capture is corrupted (truncated frame,
    /// garbled header bytes, or a pcap record cut short). Clamped to
    /// `[0, 1]`.
    pub fn frame_corruption(mut self, rate: f64) -> Self {
        self.frame_corrupt_rate = clamp_rate(rate);
        self
    }

    /// Fraction of DHCP lease log lines garbled before parsing.
    /// Clamped to `[0, 1]`.
    pub fn lease_corruption(mut self, rate: f64) -> Self {
        self.lease_corrupt_rate = clamp_rate(rate);
        self
    }

    /// Fraction of DNS queries whose answer section is lost (the
    /// record becomes unusable and is dropped). Clamped to `[0, 1]`.
    pub fn dns_answer_drops(mut self, rate: f64) -> Self {
        self.dns_drop_rate = clamp_rate(rate);
        self
    }

    /// Fraction of DNS queries delivered twice (resolver logs under
    /// retransmission). Clamped to `[0, 1]`.
    pub fn dns_duplicates(mut self, rate: f64) -> Self {
        self.dns_duplicate_rate = clamp_rate(rate);
        self
    }

    /// Panic the worker processing `day` — on the first attempt only,
    /// so the study runner's quarantine-and-retry path is exercised
    /// while the retried day still completes.
    pub fn panic_on_day(mut self, day: u16) -> Self {
        self.panic_day = Some(day);
        self
    }

    /// True when this profile injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.frame_corrupt_rate == 0.0
            && self.lease_corrupt_rate == 0.0
            && self.dns_drop_rate == 0.0
            && self.dns_duplicate_rate == 0.0
            && self.panic_day.is_none()
    }

    /// Should processing `day` on `attempt` (0 = first) panic?
    pub fn should_panic(&self, day: Day, attempt: u32) -> bool {
        attempt == 0 && self.panic_day == Some(day.0)
    }
}

fn clamp_rate(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// What a [`FaultingSink`] did to one day's stream. Plain counts (no
/// registry dependency); the study driver publishes them as
/// `pipeline.errors.*` / `assembler.malformed.*` metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Flows whose corrupted capture failed to parse and were dropped.
    pub flows_dropped: u64,
    /// Flows whose corrupted capture still parsed; the flow passed on.
    pub flows_repaired: u64,
    /// Dropped flows lost to frame truncation.
    pub frames_truncated: u64,
    /// Dropped flows lost to garbled header bytes.
    pub frames_garbled: u64,
    /// Dropped flows whose garbled EtherType left the monitored
    /// universe (the tap skips them as foreign, not as errors).
    pub frames_skipped: u64,
    /// Dropped flows lost to a pcap stream cut mid-record.
    pub pcap_truncated: u64,
    /// Lease lines garbled beyond parsing and discarded.
    pub leases_dropped: u64,
    /// Lease lines garbled but still parseable; the event passed on.
    pub leases_repaired: u64,
    /// DNS queries whose answers were lost (query dropped).
    pub dns_answers_dropped: u64,
    /// DNS queries delivered twice.
    pub dns_duplicated: u64,
}

impl FaultStats {
    /// Total records this sink refused to forward.
    pub fn records_dropped(&self) -> u64 {
        self.flows_dropped + self.leases_dropped + self.dns_answers_dropped
    }

    /// Total records that survived corruption and passed through.
    pub fn records_repaired(&self) -> u64 {
        self.flows_repaired + self.leases_repaired
    }
}

/// MAC used for synthesizing the corrupted capture of a flow. The frame
/// never reaches the pipeline (only the survive/drop verdict does), so
/// any stable value works.
const FAULT_DEVICE_MAC: MacAddr = MacAddr::new(0x02, 0xfa, 0x01, 0x7e, 0xd0, 0x01);
const FAULT_GATEWAY_MAC: MacAddr = MacAddr::new(0x02, 0x42, 0xc0, 0xa8, 0x00, 0x01);

enum CaptureLoss {
    Truncated,
    Garbled,
    Skipped,
    PcapCut,
}

/// A [`DaySink`] decorator applying a [`FaultProfile`] to one day's
/// stream before it reaches the wrapped sink.
pub struct FaultingSink<'a, S: DaySink> {
    inner: &'a mut S,
    profile: &'a FaultProfile,
    rng: SmallRng,
    stats: FaultStats,
}

impl<'a, S: DaySink> FaultingSink<'a, S> {
    /// Wrap `inner` for `day`. The RNG is keyed by (profile seed, day),
    /// so the same day corrupts identically on any worker and any
    /// attempt. Equivalent to [`for_shard`](Self::for_shard) with
    /// shard 0 (the monolithic / single-shard path).
    pub fn new(profile: &'a FaultProfile, day: Day, inner: &'a mut S) -> Self {
        Self::for_shard(profile, day, 0, inner)
    }

    /// Wrap `inner` for `day` of population shard `shard`. The RNG is
    /// keyed by (profile seed, day, shard): each shard gets its own
    /// deterministic fault weather, reproducible on any worker and any
    /// attempt. Shard 0 reproduces the pre-sharding [`new`](Self::new)
    /// stream exactly, so single-shard faulted runs stay bit-identical
    /// to historic output. Fault *positions* are positional within a
    /// shard's stream by design, so faulted figures are comparable
    /// across thread counts but not across different K.
    pub fn for_shard(profile: &'a FaultProfile, day: Day, shard: u32, inner: &'a mut S) -> Self {
        FaultingSink {
            inner,
            profile,
            rng: rng::rng_for(
                profile.seed,
                Stream::Faults,
                u64::from(day.0),
                u64::from(shard),
            ),
            stats: FaultStats::default(),
        }
    }

    /// What was injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Render `flow` as a captured frame, damage the capture, and
    /// re-parse it through the real codecs. `None` means the capture
    /// survived (the flow passes); `Some` says how it was lost.
    fn corrupt_flow_capture(&mut self, flow: &FlowRecord) -> Option<CaptureLoss> {
        let spec = BuildSpec {
            src_mac: FAULT_DEVICE_MAC,
            dst_mac: FAULT_GATEWAY_MAC,
            src_ip: flow.orig,
            dst_ip: flow.resp,
            src_port: flow.orig_port,
            dst_port: flow.resp_port,
            ident: flow.orig_port ^ flow.resp_port,
        };
        let payload = [0xabu8; 48];
        let frame = match flow.proto {
            Proto::Tcp => packet::build_tcp(spec, 1, 1, Flags::ACK, &payload),
            Proto::Udp | Proto::Other(_) => packet::build_udp(spec, &payload),
        };
        match self.rng.gen_range(0..3u8) {
            // Frame cut short: emulates a capture that stopped
            // mid-packet.
            0 => {
                let cut = self.rng.gen_range(0..frame.len());
                match packet::parse_frame(flow.ts, &frame[..cut]) {
                    Ok(Some(_)) => None,
                    Ok(None) => Some(CaptureLoss::Skipped),
                    Err(_) => Some(CaptureLoss::Truncated),
                }
            }
            // Garbled header bytes: emulates bit damage from a bad
            // NIC/offload path.
            1 => {
                let mut damaged = frame;
                for _ in 0..self.rng.gen_range(1..=4usize) {
                    let pos = self.rng.gen_range(0..damaged.len());
                    damaged[pos] ^= self.rng.gen_range(1..=255u8);
                }
                match packet::parse_frame(flow.ts, &damaged) {
                    Ok(Some(_)) => None,
                    Ok(None) => Some(CaptureLoss::Skipped),
                    Err(_) => Some(CaptureLoss::Garbled),
                }
            }
            // Pcap stream truncated mid-record: the frame goes through
            // the real writer/reader pair and the file is cut short.
            _ => {
                let Ok(mut w) = pcap::Writer::new(Vec::new()) else {
                    return Some(CaptureLoss::PcapCut);
                };
                if w.write(flow.ts, &frame).is_err() {
                    return Some(CaptureLoss::PcapCut);
                }
                let Ok(buf) = w.finish() else {
                    return Some(CaptureLoss::PcapCut);
                };
                // Cut inside the record (past the 24-byte global
                // header, before the final byte).
                let cut = self.rng.gen_range(24..buf.len());
                let mut reader = match pcap::Reader::new(&buf[..cut]) {
                    Ok(r) => r,
                    Err(_) => return Some(CaptureLoss::PcapCut),
                };
                match reader.next_record() {
                    Ok(Some(cap)) => match packet::parse_frame(cap.ts, &cap.frame) {
                        Ok(Some(_)) => None,
                        Ok(None) => Some(CaptureLoss::Skipped),
                        Err(_) => Some(CaptureLoss::Garbled),
                    },
                    Ok(None) | Err(_) => Some(CaptureLoss::PcapCut),
                }
            }
        }
    }

    /// Garble one serialized lease line and re-parse it. Mode 0 damages
    /// a character (usually fatal to the strict line codec); mode 1
    /// only mangles whitespace, which the codec tolerates — exercising
    /// the repaired path.
    fn corrupt_lease_line(&mut self, event: &LeaseEvent) -> Result<LeaseEvent, ()> {
        let line = event.to_string();
        let garbled = if self.rng.gen_range(0..4u8) == 0 {
            line.replace(' ', "   \t ")
        } else {
            let mut bytes = line.into_bytes();
            let pos = self.rng.gen_range(0..bytes.len());
            bytes[pos] = b'x';
            String::from_utf8(bytes).unwrap_or_default()
        };
        garbled.parse::<LeaseEvent>().map_err(|_| ())
    }
}

impl<S: DaySink> DaySink for FaultingSink<'_, S> {
    fn lease(&mut self, event: LeaseEvent) {
        if self.profile.lease_corrupt_rate > 0.0
            && self.rng.gen::<f64>() < self.profile.lease_corrupt_rate
        {
            match self.corrupt_lease_line(&event) {
                Ok(parsed) => {
                    self.stats.leases_repaired += 1;
                    self.inner.lease(parsed);
                }
                Err(()) => self.stats.leases_dropped += 1,
            }
            return;
        }
        self.inner.lease(event);
    }

    fn dns(&mut self, query: DnsQuery) {
        if self.profile.dns_duplicate_rate > 0.0
            && self.rng.gen::<f64>() < self.profile.dns_duplicate_rate
        {
            self.stats.dns_duplicated += 1;
            self.inner.dns(query.clone());
        }
        if self.profile.dns_drop_rate > 0.0 && self.rng.gen::<f64>() < self.profile.dns_drop_rate {
            // The answer section is what the resolver map consumes; an
            // answerless record is unusable and the line codec rejects
            // it, so the query is lost entirely.
            self.stats.dns_answers_dropped += 1;
            return;
        }
        self.inner.dns(query);
    }

    fn flow(&mut self, flow: FlowRecord) {
        if self.profile.frame_corrupt_rate > 0.0
            && self.rng.gen::<f64>() < self.profile.frame_corrupt_rate
        {
            match self.corrupt_flow_capture(&flow) {
                None => {
                    self.stats.flows_repaired += 1;
                    self.inner.flow(flow);
                }
                Some(loss) => {
                    self.stats.flows_dropped += 1;
                    match loss {
                        CaptureLoss::Truncated => self.stats.frames_truncated += 1,
                        CaptureLoss::Garbled => self.stats.frames_garbled += 1,
                        CaptureLoss::Skipped => self.stats.frames_skipped += 1,
                        CaptureLoss::PcapCut => self.stats.pcap_truncated += 1,
                    }
                }
            }
            return;
        }
        self.inner.flow(flow);
    }

    fn ua(&mut self, sighting: UaSighting) {
        // UA sightings ride HTTP metadata the fault model leaves alone.
        self.inner.ua(sighting);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DayEvent;
    use crate::{CampusSim, SimConfig};

    fn collect_day(profile: &FaultProfile, day: Day) -> (Vec<&'static str>, FaultStats) {
        let sim = CampusSim::new(SimConfig {
            scale: 0.01,
            ..Default::default()
        });
        let mut kinds = Vec::new();
        let mut tap = |e: DayEvent| {
            kinds.push(match e {
                DayEvent::Lease(_) => "lease",
                DayEvent::Dns(_) => "dns",
                DayEvent::Flow(_) => "flow",
                DayEvent::Ua(_) => "ua",
            });
        };
        let mut sink = FaultingSink::new(profile, day, &mut tap);
        sim.stream_day(day, &mut sink);
        let stats = sink.stats();
        (kinds, stats)
    }

    #[test]
    fn noop_profile_changes_nothing() {
        let profile = FaultProfile::new();
        assert!(profile.is_noop());
        let (kinds, stats) = collect_day(&profile, Day(10));
        assert_eq!(stats, FaultStats::default());
        assert!(kinds.iter().any(|k| *k == "flow"));
    }

    #[test]
    fn corruption_is_deterministic_and_accounted() {
        let profile = FaultProfile::new()
            .frame_corruption(0.05)
            .lease_corruption(0.05)
            .dns_answer_drops(0.05)
            .dns_duplicates(0.05);
        let (kinds_a, stats_a) = collect_day(&profile, Day(10));
        let (kinds_b, stats_b) = collect_day(&profile, Day(10));
        assert_eq!(kinds_a, kinds_b, "fault injection must be deterministic");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.flows_dropped > 0, "{stats_a:?}");
        assert!(stats_a.dns_answers_dropped > 0, "{stats_a:?}");
        assert!(stats_a.dns_duplicated > 0, "{stats_a:?}");
        assert!(stats_a.records_dropped() >= stats_a.flows_dropped);
        // The loss taxonomy sums to the flow drop count.
        assert_eq!(
            stats_a.frames_truncated
                + stats_a.frames_garbled
                + stats_a.frames_skipped
                + stats_a.pcap_truncated,
            stats_a.flows_dropped
        );
    }

    #[test]
    fn different_seeds_corrupt_differently() {
        let a = FaultProfile::new().frame_corruption(0.05);
        let b = FaultProfile::new().seed(1).frame_corruption(0.05);
        let (_, stats_a) = collect_day(&a, Day(10));
        let (_, stats_b) = collect_day(&b, Day(10));
        assert_ne!(stats_a, stats_b);
    }

    #[test]
    fn panic_trigger_is_first_attempt_only() {
        let p = FaultProfile::new().panic_on_day(47);
        assert!(p.should_panic(Day(47), 0));
        assert!(!p.should_panic(Day(47), 1));
        assert!(!p.should_panic(Day(46), 0));
        assert!(!FaultProfile::new().should_panic(Day(47), 0));
    }

    #[test]
    fn named_profiles_resolve() {
        assert!(FaultProfile::named("none").unwrap().is_noop());
        let d = FaultProfile::named("default").unwrap();
        assert!(!d.is_noop());
        assert!(d.should_panic(Day(47), 0));
        assert_eq!(FaultProfile::named("chaos-monkey"), None);
    }

    #[test]
    fn rates_are_clamped() {
        let p = FaultProfile::new()
            .frame_corruption(7.0)
            .lease_corruption(-1.0)
            .dns_answer_drops(f64::NAN);
        // All flows corrupted, no lease or dns faults, no panics.
        assert!(!p.is_noop());
        let (_, stats) = collect_day(&p, Day(3));
        assert_eq!(stats.leases_dropped + stats.leases_repaired, 0);
        assert_eq!(stats.dns_answers_dropped, 0);
        assert!(stats.flows_dropped + stats.flows_repaired > 0);
    }
}
