//! Batched day emission: [`Batcher`] groups the [`DaySink`] stream
//! into [`DayBatch`]es for the wide pipeline seam.
//!
//! [`stream_day`](crate::CampusSim::stream_day) emits one callback per
//! event; the batched pipeline wants runs of flows it can push through
//! [`BatchStage`](nettrace::BatchStage)s in bulk. [`Batcher`] is the
//! adapter between the two: it *is* a [`DaySink`], accumulating the day
//! stream into one reusable [`DayBatch`] — flows into a struct-of-arrays
//! [`FlowBatch`], lease/DNS events row-tagged with the flow position
//! they must precede — and hands the batch to a [`DayBatchSink`] every
//! `batch_rows` flows. One `DayBatch` (and its buffers) lives for the
//! whole day; the per-event path allocates nothing.
//!
//! Ordering is preserved exactly: a consumer that walks flow rows in
//! order, applying each lease/DNS group when the walk reaches its row
//! tag and the UA sightings at the end of the batch, observes the same
//! per-device event sequence the raw stream delivered. (UA sightings
//! may move later relative to *other* devices' events, which no
//! pipeline state can observe: a device's UA sightings touch only that
//! device's profile, and a batch never splits one device's events —
//! batches are cut on flow boundaries and a device's stream is
//! contiguous.)

use crate::generator::{DaySink, UaSighting};
use dhcplog::LeaseEvent;
use dnslog::DnsQuery;
use nettrace::flow::FlowRecord;
use nettrace::FlowBatch;

/// One batch of day events: a struct-of-arrays run of flows plus the
/// out-of-band events interleaved with it, row-tagged.
///
/// A tag of `t` on a lease or DNS event means the event arrived after
/// flow row `t - 1` and before flow row `t`; tags are nondecreasing
/// within a batch. UA sightings carry no tag (see the
/// [module docs](self) for why batch-end application is exact).
#[derive(Debug, Default)]
pub struct DayBatch {
    /// The flow rows, struct-of-arrays.
    pub flows: FlowBatch,
    /// Lease events, tagged with the flow row they precede.
    pub leases: Vec<(u32, LeaseEvent)>,
    /// DNS queries, tagged with the flow row they precede.
    pub dns: Vec<(u32, DnsQuery)>,
    /// User-Agent sightings, applied at batch end.
    pub ua: Vec<UaSighting>,
}

impl DayBatch {
    /// An empty batch with flow-column capacity for `rows` rows.
    pub fn with_capacity(rows: usize) -> Self {
        DayBatch {
            flows: FlowBatch::with_capacity(rows),
            ..DayBatch::default()
        }
    }

    /// True when the batch holds no events of any kind.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty() && self.leases.is_empty() && self.dns.is_empty() && self.ua.is_empty()
    }

    /// Empty the batch for reuse, keeping every allocation.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.leases.clear();
        self.dns.clear();
        self.ua.clear();
    }
}

/// A consumer of filled [`DayBatch`]es — the batched counterpart of
/// [`DaySink`].
pub trait DayBatchSink {
    /// Process one batch. The batch arrives with fresh cursors; the
    /// implementation may consume it in place ([`Batcher`] clears it
    /// after the call returns).
    fn day_batch(&mut self, batch: &mut DayBatch);
}

/// [`DaySink`] adapter that accumulates the day stream into
/// [`DayBatch`]es of `batch_rows` flows and forwards each to a
/// [`DayBatchSink`]. Call [`finish`](Batcher::finish) after the day
/// stream ends to deliver the final partial batch.
pub struct Batcher<'a, S: DayBatchSink> {
    sink: &'a mut S,
    batch: DayBatch,
    batch_rows: usize,
}

impl<'a, S: DayBatchSink> Batcher<'a, S> {
    /// Batch into `sink`, cutting every `batch_rows` flows
    /// (clamped to at least 1).
    pub fn new(sink: &'a mut S, batch_rows: usize) -> Self {
        let batch_rows = batch_rows.max(1);
        // Pre-size for the common case but don't pre-commit memory to a
        // huge (or effectively unbounded) cut size; Vec growth handles
        // the rest.
        Batcher {
            sink,
            batch: DayBatch::with_capacity(batch_rows.min(1 << 16)),
            batch_rows,
        }
    }

    fn deliver(&mut self) {
        if !self.batch.is_empty() {
            self.sink.day_batch(&mut self.batch);
            self.batch.clear();
        }
    }

    /// Deliver whatever remains of the final partial batch.
    pub fn finish(mut self) {
        self.deliver();
    }
}

impl<S: DayBatchSink> DaySink for Batcher<'_, S> {
    fn lease(&mut self, event: LeaseEvent) {
        let tag = self.batch.flows.raw_len() as u32;
        self.batch.leases.push((tag, event));
    }

    fn dns(&mut self, query: DnsQuery) {
        let tag = self.batch.flows.raw_len() as u32;
        self.batch.dns.push((tag, query));
    }

    fn flow(&mut self, flow: FlowRecord) {
        self.batch.flows.push_raw(&flow);
        if self.batch.flows.raw_len() >= self.batch_rows {
            self.deliver();
        }
    }

    fn ua(&mut self, sighting: UaSighting) {
        self.batch.ua.push(sighting);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DayEvent;
    use crate::{CampusSim, SimConfig};
    use nettrace::time::Day;

    fn tiny_sim() -> CampusSim {
        CampusSim::new(SimConfig {
            scale: 0.005,
            ..SimConfig::default()
        })
    }

    /// Replays batches back into a flat event list for comparison.
    #[derive(Default)]
    struct Replay {
        events: Vec<DayEvent>,
        batches: usize,
    }
    impl DayBatchSink for Replay {
        fn day_batch(&mut self, batch: &mut DayBatch) {
            let n = batch.flows.raw_len();
            let (mut li, mut di) = (0, 0);
            for row in 0..=n {
                while li < batch.leases.len() && batch.leases[li].0 as usize == row {
                    self.events
                        .push(DayEvent::Lease(batch.leases[li].1.clone()));
                    li += 1;
                }
                while di < batch.dns.len() && batch.dns[di].0 as usize == row {
                    self.events.push(DayEvent::Dns(batch.dns[di].1.clone()));
                    di += 1;
                }
                if row < n {
                    self.events.push(DayEvent::Flow(batch.flows.raw_row(row)));
                }
            }
            for ua in &batch.ua {
                self.events.push(DayEvent::Ua(ua.clone()));
            }
            self.batches += 1;
        }
    }

    fn flat(e: &DayEvent) -> String {
        match e {
            DayEvent::Lease(l) => format!("L {} {:?} {} {}", l.ts, l.action, l.ip, l.mac),
            DayEvent::Dns(q) => format!("D {} {:?} {:?} {:?}", q.ts, q.device, q.qname, q.answers),
            DayEvent::Flow(f) => format!("F {} {} {} {}", f.ts, f.orig, f.orig_port, f.orig_bytes),
            DayEvent::Ua(u) => format!("U {} {:?} {}", u.ts, u.device, u.ua),
        }
    }

    #[test]
    fn batched_stream_replays_the_raw_stream_at_any_batch_size() {
        let sim = tiny_sim();
        let day = Day(40);
        let mut raw: Vec<DayEvent> = Vec::new();
        sim.stream_day(day, &mut |e: DayEvent| raw.push(e));
        assert!(!raw.is_empty(), "test day generated no events");
        // UA sightings may legally move to their batch's end; compare
        // as (non-UA sequence, per-device UA sequence).
        let raw_other: Vec<String> = raw
            .iter()
            .filter(|e| !matches!(e, DayEvent::Ua(_)))
            .map(flat)
            .collect();
        let mut raw_ua: Vec<String> = raw
            .iter()
            .filter(|e| matches!(e, DayEvent::Ua(_)))
            .map(flat)
            .collect();
        raw_ua.sort();
        for rows in [1usize, 7, 1000, usize::MAX] {
            let mut replay = Replay::default();
            let mut b = Batcher::new(&mut replay, rows);
            sim.stream_day(day, &mut b);
            b.finish();
            let got_other: Vec<String> = replay
                .events
                .iter()
                .filter(|e| !matches!(e, DayEvent::Ua(_)))
                .map(flat)
                .collect();
            let mut got_ua: Vec<String> = replay
                .events
                .iter()
                .filter(|e| matches!(e, DayEvent::Ua(_)))
                .map(flat)
                .collect();
            got_ua.sort();
            assert_eq!(
                got_other, raw_other,
                "non-UA order diverged at batch_rows={rows}"
            );
            assert_eq!(got_ua, raw_ua, "UA set diverged at batch_rows={rows}");
            if rows == 1 {
                assert!(replay.batches >= raw_other.len() / 2);
            }
        }
    }

    #[test]
    fn finish_flushes_a_flowless_remainder() {
        struct Count(usize, usize);
        impl DayBatchSink for Count {
            fn day_batch(&mut self, batch: &mut DayBatch) {
                self.0 += 1;
                self.1 += batch.leases.len();
            }
        }
        let mut sink = Count(0, 0);
        let mut b = Batcher::new(&mut sink, 8);
        b.lease(LeaseEvent {
            ts: nettrace::Timestamp::from_secs(0),
            action: dhcplog::LeaseAction::Assign,
            ip: std::net::Ipv4Addr::new(10, 40, 0, 1),
            mac: nettrace::MacAddr::new(0, 0, 0, 0, 0, 1),
        });
        b.finish();
        assert_eq!((sink.0, sink.1), (1, 1));
    }
}
