//! Scenario engine: the study timeline, policy events, and behaviour
//! deltas as first-class *data* instead of hard-coded tables.
//!
//! A [`Scenario`] names a sequence of phases (contiguous day ranges with
//! per-phase behaviour curves), a policy block (departure waves, console
//! launch/acquisition windows, visitor cut-off), optional population-mix
//! overrides, and global behaviour multipliers. Scenarios load from a
//! strict, dependency-free TOML subset ([`Scenario::parse`]), serialize
//! canonically ([`Scenario::to_toml`]), and carry a stable content hash
//! ([`Scenario::content_hash`]) recorded in run manifests for provenance.
//!
//! The paper's Feb–May 2020 timeline is re-expressed as the built-in
//! [`paper-2020`](Scenario::builtin) scenario, which reproduces the
//! legacy hard-coded pipeline **byte-identically** (asserted by tests
//! that compare every curve against the former closed-form tables on all
//! 121 study days). The 2019 counterfactual is the built-in
//! `baseline-2019`, and [`Scenario::counterfactual`] derives the same
//! twin from any scenario while preserving its RNG draw structure so a
//! scenario and its counterfactual build bit-identical populations.

use std::fmt;
use std::sync::OnceLock;

use geoloc::SubPop;
use nettrace::time::{Day, Month};

use crate::config::SimConfig;
use crate::model::{self, SocialApp, SteamMonth};

/// Errors from parsing or validating a [`Scenario`].
///
/// Every variant carries enough context (line numbers for parse errors,
/// field names for validation errors) to pinpoint the problem in the
/// scenario file without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A line the parser could not interpret at all.
    Syntax {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A key that is not part of the scenario schema. The parser is
    /// strict: misspellings fail loudly instead of silently defaulting.
    UnknownKey {
        /// 1-based line number in the input.
        line: usize,
        /// The offending key (qualified with its section).
        key: String,
    },
    /// The same key appeared twice in one section.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A value failed to parse as the type its key requires.
    BadValue {
        /// 1-based line number in the input.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// What the parser expected.
        msg: String,
    },
    /// A required key was absent.
    MissingKey {
        /// The section (e.g. `phase "break"`) missing the key.
        context: String,
        /// The missing key.
        key: String,
    },
    /// A behaviour curve expression did not parse.
    BadCurve {
        /// The key holding the curve.
        key: String,
        /// What went wrong.
        msg: String,
    },
    /// [`Scenario::builtin`] was asked for a name not in the library.
    UnknownScenario {
        /// The requested name.
        name: String,
    },
    /// The phase list is empty.
    EmptyPhases,
    /// Consecutive phases do not tile the study span contiguously.
    PhaseGap {
        /// Name of the phase that starts at the wrong day.
        phase: String,
        /// The day the phase was expected to start on.
        expected_start: u16,
        /// The day it actually starts on.
        actual_start: u16,
    },
    /// A phase's day range is inverted or leaves `0..=120`.
    DayOutOfRange {
        /// Which phase or policy field.
        context: String,
        /// The offending day value.
        day: u16,
    },
    /// A departure/return wave is structurally invalid.
    BadWave {
        /// Index of the wave in declaration order.
        index: usize,
        /// What is wrong with it.
        msg: String,
    },
    /// A fraction-like field left `[0, 1]`, or a multiplier is not
    /// finite and non-negative.
    BadField {
        /// The offending field (qualified with its section).
        field: String,
        /// The offending value.
        value: f64,
    },
    /// The scenario name is empty or uses characters outside
    /// `[A-Za-z0-9_-]` (names become output directory names).
    BadName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            ScenarioError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key `{key}`")
            }
            ScenarioError::BadValue { line, key, msg } => {
                write!(f, "line {line}: bad value for `{key}`: {msg}")
            }
            ScenarioError::MissingKey { context, key } => {
                write!(f, "{context}: missing required key `{key}`")
            }
            ScenarioError::BadCurve { key, msg } => {
                write!(f, "bad curve for `{key}`: {msg}")
            }
            ScenarioError::UnknownScenario { name } => {
                write!(f, "unknown built-in scenario `{name}`")
            }
            ScenarioError::EmptyPhases => write!(f, "scenario has no phases"),
            ScenarioError::PhaseGap {
                phase,
                expected_start,
                actual_start,
            } => write!(
                f,
                "phase `{phase}` starts at day {actual_start}, expected {expected_start} \
                 (phases must tile the study span contiguously)"
            ),
            ScenarioError::DayOutOfRange { context, day } => {
                write!(f, "{context}: day {day} outside the study span")
            }
            ScenarioError::BadWave { index, msg } => {
                write!(f, "policy wave #{index}: {msg}")
            }
            ScenarioError::BadField { field, value } => {
                write!(f, "{field}: value {value} out of range")
            }
            ScenarioError::BadName { name } => {
                write!(f, "scenario name `{name}` must be non-empty [A-Za-z0-9_-]")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One analytic segment of a behaviour [`Curve`].
///
/// Segment forms are chosen so the built-in `paper-2020` scenario can
/// re-express the legacy closed-form tables **bit-identically**: each
/// form performs exactly the arithmetic the former hard-coded functions
/// performed, in the same order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Seg {
    /// A constant value.
    Const(f64),
    /// Linear interpolation `from + (to - from) * t` where
    /// `t = ((d - start) / span).clamp(0, 1)`.
    Lerp {
        /// Value at `start`.
        from: f64,
        /// Value at `start + span`.
        to: f64,
        /// Day the ramp begins.
        start: f64,
        /// Ramp length in days.
        span: f64,
    },
    /// Additive ramp `base + coeff * t` with the same clamped `t` as
    /// [`Seg::Lerp`]. Exists because some legacy tables wrote the slope
    /// as an explicit coefficient — `base + coeff*t` and
    /// `from + (to-from)*t` differ in the last bit when `to - from`
    /// does not round to `coeff`.
    Rise {
        /// Value at `start`.
        base: f64,
        /// Total rise across the ramp.
        coeff: f64,
        /// Day the ramp begins.
        start: f64,
        /// Ramp length in days.
        span: f64,
    },
    /// Unclamped secular drift `base + slope * (d / denom)` across the
    /// whole study (the 2019 counterfactual's gentle upward trend).
    Drift {
        /// Value at day 0.
        base: f64,
        /// Total drift across `denom` days.
        slope: f64,
        /// Normalizing day count.
        denom: f64,
    },
}

impl Seg {
    /// Evaluate at (fractional) study day `d`.
    pub fn eval(&self, d: f64) -> f64 {
        match *self {
            Seg::Const(v) => v,
            Seg::Lerp {
                from,
                to,
                start,
                span,
            } => from + (to - from) * ((d - start) / span).clamp(0.0, 1.0),
            Seg::Rise {
                base,
                coeff,
                start,
                span,
            } => base + coeff * ((d - start) / span).clamp(0.0, 1.0),
            Seg::Drift { base, slope, denom } => base + slope * (d / denom),
        }
    }

    fn to_expr(self) -> String {
        match self {
            Seg::Const(v) => format!("const({v})"),
            Seg::Lerp {
                from,
                to,
                start,
                span,
            } => format!("lerp({from}, {to}, {start}, {span})"),
            Seg::Rise {
                base,
                coeff,
                start,
                span,
            } => format!("rise({base}, {coeff}, {start}, {span})"),
            Seg::Drift { base, slope, denom } => format!("drift({base}, {slope}, {denom})"),
        }
    }

    fn parse_expr(key: &str, s: &str) -> Result<Seg, ScenarioError> {
        let s = s.trim();
        let bad = |msg: &str| ScenarioError::BadCurve {
            key: key.to_string(),
            msg: msg.to_string(),
        };
        let open = s.find('(').ok_or_else(|| bad("expected `name(args)`"))?;
        if !s.ends_with(')') {
            return Err(bad("expected closing `)`"));
        }
        let name = &s[..open];
        let args: Vec<f64> = {
            let inner = &s[open + 1..s.len() - 1];
            let mut out = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                let v: f64 = part
                    .parse()
                    .map_err(|_| bad(&format!("`{part}` is not a number")))?;
                if !v.is_finite() {
                    return Err(bad(&format!("`{part}` is not finite")));
                }
                out.push(v);
            }
            out
        };
        let want = |n: usize| {
            if args.len() == n {
                Ok(())
            } else {
                Err(bad(&format!(
                    "`{name}` takes {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        match name {
            "const" => {
                want(1)?;
                Ok(Seg::Const(args[0]))
            }
            "lerp" => {
                want(4)?;
                if args[3] == 0.0 {
                    return Err(bad("lerp span must be nonzero"));
                }
                Ok(Seg::Lerp {
                    from: args[0],
                    to: args[1],
                    start: args[2],
                    span: args[3],
                })
            }
            "rise" => {
                want(4)?;
                if args[3] == 0.0 {
                    return Err(bad("rise span must be nonzero"));
                }
                Ok(Seg::Rise {
                    base: args[0],
                    coeff: args[1],
                    start: args[2],
                    span: args[3],
                })
            }
            "drift" => {
                want(3)?;
                if args[2] == 0.0 {
                    return Err(bad("drift denom must be nonzero"));
                }
                Ok(Seg::Drift {
                    base: args[0],
                    slope: args[1],
                    denom: args[2],
                })
            }
            _ => Err(bad(&format!("unknown segment `{name}`"))),
        }
    }
}

/// One piece of a piecewise [`Curve`]: a segment, optionally bounded by
/// the last day (inclusive) it applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct Piece {
    /// Last study day (inclusive) this piece covers; `None` means "to
    /// the end" and is only legal on the final piece.
    pub until: Option<u16>,
    /// The segment evaluated while this piece is active.
    pub seg: Seg,
}

/// A piecewise behaviour curve over study days.
///
/// Written in scenario files as a `;`-separated list of pieces, each
/// optionally prefixed `until <day>:` — e.g.
/// `"until 63: lerp(1.28, 1.78, 58, 5); lerp(1.78, 1.1, 63, 57)"`.
/// Every piece except the last must carry `until`; the last must not.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve(pub Vec<Piece>);

impl Curve {
    /// A single-segment curve.
    pub fn single(seg: Seg) -> Self {
        Curve(vec![Piece { until: None, seg }])
    }

    /// A constant curve.
    pub fn constant(v: f64) -> Self {
        Curve::single(Seg::Const(v))
    }

    /// Evaluate on a study day.
    pub fn eval(&self, day: Day) -> f64 {
        let d = day.0 as f64;
        for p in &self.0 {
            match p.until {
                Some(u) if day.0 > u => continue,
                _ => return p.seg.eval(d),
            }
        }
        // Unreachable for validated curves (the last piece is unbounded);
        // an empty curve is rejected by `Scenario::validate`.
        1.0
    }

    /// Render as the curve-expression DSL (canonical form).
    pub fn to_expr(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            if let Some(u) = p.until {
                out.push_str(&format!("until {u}: "));
            }
            out.push_str(&p.seg.to_expr());
        }
        out
    }

    /// Parse the curve-expression DSL.
    pub fn parse_expr(key: &str, s: &str) -> Result<Curve, ScenarioError> {
        let bad = |msg: String| ScenarioError::BadCurve {
            key: key.to_string(),
            msg,
        };
        let mut pieces = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                return Err(bad("empty curve piece".to_string()));
            }
            let (until, expr) = match part.strip_prefix("until") {
                Some(rest) if rest.starts_with([' ', '\t']) => {
                    let rest = rest.trim_start();
                    let colon = rest
                        .find(':')
                        .ok_or_else(|| bad("`until` needs `: <segment>`".to_string()))?;
                    let day: u16 = rest[..colon].trim().parse().map_err(|_| {
                        bad(format!("`{}` is not a day number", rest[..colon].trim()))
                    })?;
                    (Some(day), &rest[colon + 1..])
                }
                _ => (None, part),
            };
            pieces.push(Piece {
                until,
                seg: Seg::parse_expr(key, expr)?,
            });
        }
        // Structural checks: `until` on every piece but the last, strictly
        // increasing bounds.
        let n = pieces.len();
        let mut prev: Option<u16> = None;
        for (i, p) in pieces.iter().enumerate() {
            if i + 1 < n && p.until.is_none() {
                return Err(bad("only the last piece may omit `until`".to_string()));
            }
            if i + 1 == n && p.until.is_some() {
                return Err(bad("the last piece must not carry `until`".to_string()));
            }
            if let (Some(a), Some(b)) = (prev, p.until) {
                if b <= a {
                    return Err(bad(format!("`until {b}` does not increase past {a}")));
                }
            }
            prev = p.until;
        }
        Ok(Curve(pieces))
    }
}

/// A per-month scalar table, indexed explicitly by [`Month`].
///
/// Replaces the former positional `[f64; 4]` tables in the model layer,
/// whose index order was only documented by a
/// `let _ = (Feb, Mar, Apr, May)` hack — the scenario layer now owns the
/// month→value mapping and a misordered table is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthTable {
    /// February value.
    pub feb: f64,
    /// March value.
    pub mar: f64,
    /// April value.
    pub apr: f64,
    /// May value.
    pub may: f64,
}

impl MonthTable {
    /// Build from the four study months in calendar order.
    pub const fn new(feb: f64, mar: f64, apr: f64, may: f64) -> Self {
        MonthTable { feb, mar, apr, may }
    }

    /// Look up a month's value.
    pub fn get(&self, month: Month) -> f64 {
        match month {
            Month::Feb => self.feb,
            Month::Mar => self.mar,
            Month::Apr => self.apr,
            Month::May => self.may,
        }
    }
}

/// One named phase: a contiguous day range with its behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name (for reports and error messages).
    pub name: String,
    /// First study day (inclusive).
    pub start: u16,
    /// Last study day (inclusive).
    pub end: u16,
    /// Whether campus counts as "post shutdown" during this phase —
    /// drives the diurnal/weekend activity shapes (§4.1's earlier,
    /// higher weekday spikes).
    pub post_shutdown: bool,
    /// Distinct background sites in a device's home set (§4.1's "+34%
    /// distinct sites" growth).
    pub web_breadth: usize,
    /// Expected weekday Zoom hours per student.
    pub zoom_weekday: f64,
    /// Expected weekend Zoom hours per student.
    pub zoom_weekend: f64,
    /// Leisure-volume multiplier curve, domestic students.
    pub leisure_domestic: Curve,
    /// Leisure-volume multiplier curve, international students.
    pub leisure_international: Curve,
    /// Switch gameplay-hours multiplier curve (before weekend boost).
    pub switch_mult: Curve,
}

/// One departure wave: a triangular distribution of departure days and
/// an optional partial return.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveSpec {
    /// Earliest departure day.
    pub start: u16,
    /// Modal departure day.
    pub peak: u16,
    /// Latest departure day.
    pub end: u16,
    /// Relative share of departing students assigned to this wave
    /// (normalized across waves).
    pub fraction: f64,
    /// Day departed students come back on campus, if any.
    pub return_day: Option<u16>,
    /// Fraction of this wave's departers who return (only meaningful
    /// with `return_day`).
    pub return_fraction: f64,
}

/// Policy events: who leaves, when, and what gets bought.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// Whether non-staying students depart at all (false for baselines).
    pub departures: bool,
    /// Departure waves (the paper's March exodus is one wave). Waves are
    /// sampled even when `departures` is false so a scenario and its
    /// counterfactual consume identical RNG draw sequences.
    pub waves: Vec<WaveSpec>,
    /// Day a console hit (Animal Crossing, 2020-03-20) floods the
    /// vendor CDN with downloads, if the scenario has one.
    pub console_launch_day: Option<u16>,
    /// First day of the lock-down console buying window (inclusive).
    pub console_buy_start: u16,
    /// End of the console buying window (exclusive).
    pub console_buy_end: u16,
    /// Whether staying students actually acquire consoles in the window
    /// (false for baselines; the purchase day is drawn regardless, for
    /// RNG parity).
    pub console_acquisitions: bool,
    /// Latest day a visitor device may stay on campus.
    pub visitor_cutoff: u16,
}

impl Default for PolicySpec {
    fn default() -> Self {
        PolicySpec {
            departures: false,
            waves: Vec::new(),
            console_launch_day: None,
            console_buy_start: 60,
            console_buy_end: 115,
            console_acquisitions: false,
            visitor_cutoff: 46,
        }
    }
}

/// Optional population-mix overrides; `None` falls back to the
/// [`SimConfig`] knob.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PopulationSpec {
    /// Fraction of students who are international.
    pub intl_fraction: Option<f64>,
    /// Probability a domestic student stays post-shutdown.
    pub domestic_stay_rate: Option<f64>,
    /// Probability an international student stays post-shutdown.
    pub intl_stay_rate: Option<f64>,
}

/// Global behaviour multipliers applied on top of the phase curves and
/// app catalog. All default to 1 (no delta).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorSpec {
    /// Background-web volume multiplier.
    pub web: f64,
    /// Zoom-hours multiplier.
    pub zoom: f64,
    /// Social-app duration multiplier (all apps).
    pub social: f64,
    /// Steam bytes/connections multiplier.
    pub steam: f64,
    /// Switch gameplay multiplier.
    pub switch_games: f64,
    /// Extra Facebook-specific multiplier.
    pub facebook: f64,
    /// Extra Instagram-specific multiplier.
    pub instagram: f64,
    /// Extra TikTok-specific multiplier.
    pub tiktok: f64,
    /// Override for the config's year-over-year growth factor (the 2019
    /// baseline pins this to 1).
    pub yoy_growth: Option<f64>,
}

impl Default for BehaviorSpec {
    fn default() -> Self {
        BehaviorSpec {
            web: 1.0,
            zoom: 1.0,
            social: 1.0,
            steam: 1.0,
            switch_games: 1.0,
            facebook: 1.0,
            instagram: 1.0,
            tiktok: 1.0,
            yoy_growth: None,
        }
    }
}

/// A complete scenario description. See the [module docs](self) for the
/// file format and [`Scenario::builtin`] for the shipped library.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (`[A-Za-z0-9_-]+`; doubles as the output directory
    /// name in matrix runs).
    pub name: String,
    /// Human-readable description for reports.
    pub description: String,
    /// Ordered, contiguous phases tiling days `0..=120`.
    pub phases: Vec<PhaseSpec>,
    /// Policy events.
    pub policy: PolicySpec,
    /// Population-mix overrides.
    pub population: PopulationSpec,
    /// Global behaviour multipliers.
    pub behavior: BehaviorSpec,
}

impl Scenario {
    /// The phase covering `day` (clamped to the last phase past the
    /// study end).
    pub fn phase_at(&self, day: Day) -> &PhaseSpec {
        self.phases
            .iter()
            .find(|p| day.0 >= p.start && day.0 <= p.end)
            .unwrap_or_else(|| &self.phases[self.phases.len() - 1])
    }

    /// Day-level leisure volume multiplier relative to the February
    /// baseline (the scenario-owned successor of the former
    /// `model::leisure_multiplier` table).
    pub fn leisure_multiplier(&self, subpop: SubPop, day: Day) -> f64 {
        let p = self.phase_at(day);
        let curve = match subpop {
            SubPop::Domestic => &p.leisure_domestic,
            SubPop::International => &p.leisure_international,
        };
        curve.eval(day) * self.behavior.web
    }

    /// Expected Zoom hours for a student on `day`.
    pub fn zoom_hours(&self, day: Day) -> f64 {
        let p = self.phase_at(day);
        let h = if day.weekday().is_weekend() {
            p.zoom_weekend
        } else {
            p.zoom_weekday
        };
        h * self.behavior.zoom
    }

    /// Switch gameplay-hours multiplier on `day` (weekend boost applied
    /// here, as the legacy table did).
    pub fn switch_multiplier(&self, day: Day) -> f64 {
        let weekend_boost = if day.weekday().is_weekend() { 1.4 } else { 1.0 };
        self.phase_at(day).switch_mult.eval(day) * weekend_boost * self.behavior.switch_games
    }

    /// Distinct background sites in a device's home set on `day`.
    pub fn web_breadth(&self, day: Day) -> usize {
        self.phase_at(day).web_breadth
    }

    /// Whether `day` falls in a post-shutdown phase (drives diurnal and
    /// weekend activity shapes).
    pub fn post_shutdown(&self, day: Day) -> bool {
        self.phase_at(day).post_shutdown
    }

    /// Monthly median social-app hours for a device cohort, scaled by
    /// the scenario's behaviour multipliers.
    pub fn social_monthly_hours(
        &self,
        app: SocialApp,
        subpop: SubPop,
        escalator: bool,
        month: Month,
    ) -> f64 {
        let app_mult = match app {
            SocialApp::Facebook => self.behavior.facebook,
            SocialApp::Instagram => self.behavior.instagram,
            SocialApp::TikTok => self.behavior.tiktok,
        };
        model::social_base_hours(app, subpop, escalator).get(month)
            * (self.behavior.social * app_mult)
    }

    /// Monthly Steam model with the scenario's gaming delta applied to
    /// the byte/connection medians (activity probability is left to the
    /// base tables).
    pub fn steam_month(&self, subpop: SubPop, month: Month) -> SteamMonth {
        let base = model::steam_month(subpop, month);
        SteamMonth {
            active_prob: base.active_prob,
            median_bytes: base.median_bytes * self.behavior.steam,
            median_conns: base.median_conns * self.behavior.steam,
        }
    }

    /// The year-over-year growth factor in effect: the scenario override
    /// if set, else the config knob.
    pub fn effective_yoy(&self, cfg_yoy: f64) -> f64 {
        self.behavior.yoy_growth.unwrap_or(cfg_yoy)
    }

    /// Whether this scenario already *is* a no-event baseline (nothing
    /// departs, nothing launches, nothing gets bought).
    pub fn is_baseline(&self) -> bool {
        !self.policy.departures
            && !self.policy.console_acquisitions
            && self.policy.console_launch_day.is_none()
    }

    /// Derive the 2019-style counterfactual twin of this scenario: same
    /// population, same phase calendar (post-shutdown flags and web
    /// breadth stay — those shifts are calendar-driven, not
    /// pandemic-driven, see DESIGN.md), but no departures, no console
    /// events, pre-emergency Zoom levels, secular-drift leisure, flat
    /// Switch play, and year-over-year growth pinned to 1.
    ///
    /// The wave list and buying window are preserved (with their effects
    /// disabled) so the twin consumes the exact RNG draw sequence of the
    /// original and builds a bit-identical population. Idempotent on
    /// scenarios that are already baselines.
    pub fn counterfactual(&self) -> Scenario {
        if self.is_baseline() {
            return self.clone();
        }
        if self.name == PAPER_2020 {
            // The paper scenario's twin is the named built-in baseline.
            match Scenario::builtin(BASELINE_2019) {
                Ok(s) => return s,
                Err(_) => unreachable!("baseline-2019 is a built-in"),
            }
        }
        let mut twin = self.clone();
        twin.name = format!("{}-counterfactual", self.name);
        twin.description = format!("No-event counterfactual of `{}`", self.name);
        for p in &mut twin.phases {
            p.zoom_weekday = 0.05;
            p.zoom_weekend = 0.01;
            p.leisure_domestic = Curve::single(Seg::Drift {
                base: 1.0,
                slope: 0.05,
                denom: 120.0,
            });
            p.leisure_international = Curve::single(Seg::Drift {
                base: 1.0,
                slope: 0.05,
                denom: 120.0,
            });
            p.switch_mult = Curve::constant(1.0);
        }
        twin.policy.departures = false;
        twin.policy.console_launch_day = None;
        twin.policy.console_acquisitions = false;
        twin.behavior = BehaviorSpec {
            yoy_growth: Some(1.0),
            ..BehaviorSpec::default()
        };
        twin
    }

    /// The counterfactual *config* for a run: same population and seed;
    /// the attached scenario becomes its counterfactual twin and
    /// year-over-year growth is unwound.
    pub fn counterfactual_of(cfg: &SimConfig) -> SimConfig {
        let mut twin = cfg.clone();
        twin.scenario = cfg.scenario.counterfactual();
        twin.yoy_growth = 1.0;
        twin
    }

    /// Stable content hash of the canonical serialization, recorded in
    /// run manifests. Comments and formatting in a scenario file do not
    /// affect the hash.
    pub fn content_hash(&self) -> u64 {
        lockdown_obs::manifest::fnv1a_64(self.to_toml().as_bytes())
    }

    /// `content_hash` rendered as the fixed-width hex manifests use.
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// Whether this is the unmodified built-in paper scenario (used to
    /// keep legacy config hashes byte-stable).
    pub fn is_paper_default(&self) -> bool {
        self.name == PAPER_2020 && *self == *paper_2020()
    }
}

impl Default for Scenario {
    /// The paper's own timeline: `paper-2020`.
    fn default() -> Self {
        paper_2020().clone()
    }
}

/// Name of the built-in paper timeline scenario.
pub const PAPER_2020: &str = "paper-2020";
/// Name of the built-in 2019 counterfactual baseline scenario.
pub const BASELINE_2019: &str = "baseline-2019";

const BUILTIN_SOURCES: [(&str, &str); 4] = [
    (PAPER_2020, include_str!("../scenarios/paper-2020.toml")),
    (
        BASELINE_2019,
        include_str!("../scenarios/baseline-2019.toml"),
    ),
    (
        "favale-elearning",
        include_str!("../scenarios/favale-elearning.toml"),
    ),
    (
        "staggered-reopening",
        include_str!("../scenarios/staggered-reopening.toml"),
    ),
];

fn builtin_library() -> &'static [Scenario] {
    static LIB: OnceLock<Vec<Scenario>> = OnceLock::new();
    LIB.get_or_init(|| {
        BUILTIN_SOURCES
            .iter()
            .map(|(name, src)| match Scenario::parse(src) {
                Ok(s) => {
                    assert_eq!(
                        &s.name, name,
                        "built-in scenario file name mismatch: {name}"
                    );
                    s
                }
                Err(e) => panic!("built-in scenario `{name}` failed to parse: {e}"),
            })
            .collect()
    })
}

fn paper_2020() -> &'static Scenario {
    &builtin_library()[0]
}

impl Scenario {
    /// The shipped scenario library, in catalog order: `paper-2020`,
    /// `baseline-2019`, `favale-elearning` (the e-learning-heavy
    /// European campus of Favale et al.), `staggered-reopening` (a
    /// Feldmann-style multi-wave timeline with a partial return and a
    /// second shutdown).
    pub fn builtins() -> &'static [Scenario] {
        builtin_library()
    }

    /// Names of the built-in scenarios, catalog order.
    pub fn builtin_names() -> Vec<&'static str> {
        BUILTIN_SOURCES.iter().map(|(n, _)| *n).collect()
    }

    /// Look up a built-in scenario by name.
    pub fn builtin(name: &str) -> Result<Scenario, ScenarioError> {
        builtin_library()
            .iter()
            .find(|s| s.name == name)
            .cloned()
            .ok_or_else(|| ScenarioError::UnknownScenario {
                name: name.to_string(),
            })
    }

    /// Structural validation: phases must tile days `0..=120`
    /// contiguously, waves must be well-formed triangles, every
    /// fraction/multiplier must be in range. [`Scenario::parse`] calls
    /// this, so a parsed scenario is always valid; call it directly on
    /// programmatically built scenarios.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(ScenarioError::BadName {
                name: self.name.clone(),
            });
        }
        if self.phases.is_empty() {
            return Err(ScenarioError::EmptyPhases);
        }
        let last_day = nettrace::time::StudyCalendar::NUM_DAYS - 1;
        let mut expected_start = 0u16;
        let mut seen_names: Vec<&str> = Vec::new();
        for p in &self.phases {
            if p.name.is_empty() || seen_names.contains(&p.name.as_str()) {
                return Err(ScenarioError::BadName {
                    name: format!("phase `{}`", p.name),
                });
            }
            seen_names.push(&p.name);
            if p.start != expected_start {
                return Err(ScenarioError::PhaseGap {
                    phase: p.name.clone(),
                    expected_start,
                    actual_start: p.start,
                });
            }
            if p.end < p.start || p.end > last_day {
                return Err(ScenarioError::DayOutOfRange {
                    context: format!("phase `{}`", p.name),
                    day: p.end,
                });
            }
            expected_start = p.end + 1;
            if p.web_breadth == 0 {
                return Err(ScenarioError::BadField {
                    field: format!("phase `{}`.web_breadth", p.name),
                    value: 0.0,
                });
            }
            for (fname, v) in [
                ("zoom_weekday", p.zoom_weekday),
                ("zoom_weekend", p.zoom_weekend),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(ScenarioError::BadField {
                        field: format!("phase `{}`.{fname}", p.name),
                        value: v,
                    });
                }
            }
            for (cname, c) in [
                ("leisure_domestic", &p.leisure_domestic),
                ("leisure_international", &p.leisure_international),
                ("switch", &p.switch_mult),
            ] {
                if c.0.is_empty() {
                    return Err(ScenarioError::BadCurve {
                        key: format!("phase `{}`.{cname}", p.name),
                        msg: "curve has no pieces".to_string(),
                    });
                }
            }
        }
        if expected_start != last_day + 1 {
            return Err(ScenarioError::DayOutOfRange {
                context: "last phase must end on the final study day".to_string(),
                day: expected_start.saturating_sub(1),
            });
        }
        let pol = &self.policy;
        if pol.departures && pol.waves.is_empty() {
            return Err(ScenarioError::BadWave {
                index: 0,
                msg: "departures enabled but no [[policy.wave]] defined".to_string(),
            });
        }
        for (i, w) in pol.waves.iter().enumerate() {
            let wave_err = |msg: String| ScenarioError::BadWave { index: i, msg };
            if !(w.start <= w.peak && w.peak <= w.end && w.end > w.start) {
                return Err(wave_err(format!(
                    "needs start <= peak <= end with end > start, got {}/{}/{}",
                    w.start, w.peak, w.end
                )));
            }
            if w.end > last_day {
                return Err(ScenarioError::DayOutOfRange {
                    context: format!("policy wave #{i}"),
                    day: w.end,
                });
            }
            if !w.fraction.is_finite() || w.fraction <= 0.0 {
                return Err(wave_err(format!(
                    "fraction must be > 0, got {}",
                    w.fraction
                )));
            }
            if let Some(r) = w.return_day {
                if r <= w.end || r > last_day {
                    return Err(wave_err(format!(
                        "return_day {r} must lie after the wave end {} and within the study",
                        w.end
                    )));
                }
            }
            if !w.return_fraction.is_finite() || !(0.0..=1.0).contains(&w.return_fraction) {
                return Err(wave_err(format!(
                    "return_fraction must lie in [0, 1], got {}",
                    w.return_fraction
                )));
            }
        }
        if let Some(d) = pol.console_launch_day {
            if d > last_day {
                return Err(ScenarioError::DayOutOfRange {
                    context: "policy.console_launch_day".to_string(),
                    day: d,
                });
            }
        }
        if pol.console_buy_start >= pol.console_buy_end || pol.console_buy_end > last_day + 1 {
            return Err(ScenarioError::DayOutOfRange {
                context: "policy.console_buy window".to_string(),
                day: pol.console_buy_end,
            });
        }
        if pol.visitor_cutoff > last_day {
            return Err(ScenarioError::DayOutOfRange {
                context: "policy.visitor_cutoff".to_string(),
                day: pol.visitor_cutoff,
            });
        }
        for (field, v) in [
            ("population.intl_fraction", self.population.intl_fraction),
            (
                "population.domestic_stay_rate",
                self.population.domestic_stay_rate,
            ),
            ("population.intl_stay_rate", self.population.intl_stay_rate),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(ScenarioError::BadField {
                        field: field.to_string(),
                        value: v,
                    });
                }
            }
        }
        let b = &self.behavior;
        for (field, v) in [
            ("behavior.web", b.web),
            ("behavior.zoom", b.zoom),
            ("behavior.social", b.social),
            ("behavior.steam", b.steam),
            ("behavior.switch", b.switch_games),
            ("behavior.facebook", b.facebook),
            ("behavior.instagram", b.instagram),
            ("behavior.tiktok", b.tiktok),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ScenarioError::BadField {
                    field: field.to_string(),
                    value: v,
                });
            }
        }
        if let Some(v) = b.yoy_growth {
            if !v.is_finite() || v <= 0.0 {
                return Err(ScenarioError::BadField {
                    field: "behavior.yoy_growth".to_string(),
                    value: v,
                });
            }
        }
        Ok(())
    }

    /// Canonical serialization: fixed key order, floats in shortest
    /// round-trip form. `parse(to_toml(s))` reproduces `s` exactly, and
    /// `to_toml` is a fixpoint under re-parsing — the property the
    /// content hash relies on.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(out, "name = \"{}\"", esc(&self.name));
        let _ = writeln!(out, "description = \"{}\"", esc(&self.description));
        let pop = &self.population;
        if pop.intl_fraction.is_some()
            || pop.domestic_stay_rate.is_some()
            || pop.intl_stay_rate.is_some()
        {
            let _ = writeln!(out, "\n[population]");
            if let Some(v) = pop.intl_fraction {
                let _ = writeln!(out, "intl_fraction = {v}");
            }
            if let Some(v) = pop.domestic_stay_rate {
                let _ = writeln!(out, "domestic_stay_rate = {v}");
            }
            if let Some(v) = pop.intl_stay_rate {
                let _ = writeln!(out, "intl_stay_rate = {v}");
            }
        }
        let pol = &self.policy;
        let _ = writeln!(out, "\n[policy]");
        let _ = writeln!(out, "departures = {}", pol.departures);
        let _ = writeln!(out, "console_acquisitions = {}", pol.console_acquisitions);
        if let Some(d) = pol.console_launch_day {
            let _ = writeln!(out, "console_launch_day = {d}");
        }
        let _ = writeln!(out, "console_buy_start = {}", pol.console_buy_start);
        let _ = writeln!(out, "console_buy_end = {}", pol.console_buy_end);
        let _ = writeln!(out, "visitor_cutoff = {}", pol.visitor_cutoff);
        for w in &pol.waves {
            let _ = writeln!(out, "\n[[policy.wave]]");
            let _ = writeln!(out, "start = {}", w.start);
            let _ = writeln!(out, "peak = {}", w.peak);
            let _ = writeln!(out, "end = {}", w.end);
            let _ = writeln!(out, "fraction = {}", w.fraction);
            if let Some(r) = w.return_day {
                let _ = writeln!(out, "return_day = {r}");
                let _ = writeln!(out, "return_fraction = {}", w.return_fraction);
            }
        }
        let b = &self.behavior;
        let _ = writeln!(out, "\n[behavior]");
        let _ = writeln!(out, "web = {}", b.web);
        let _ = writeln!(out, "zoom = {}", b.zoom);
        let _ = writeln!(out, "social = {}", b.social);
        let _ = writeln!(out, "steam = {}", b.steam);
        let _ = writeln!(out, "switch = {}", b.switch_games);
        let _ = writeln!(out, "facebook = {}", b.facebook);
        let _ = writeln!(out, "instagram = {}", b.instagram);
        let _ = writeln!(out, "tiktok = {}", b.tiktok);
        if let Some(v) = b.yoy_growth {
            let _ = writeln!(out, "yoy_growth = {v}");
        }
        for p in &self.phases {
            let _ = writeln!(out, "\n[[phase]]");
            let _ = writeln!(out, "name = \"{}\"", esc(&p.name));
            let _ = writeln!(out, "start = {}", p.start);
            let _ = writeln!(out, "end = {}", p.end);
            let _ = writeln!(out, "post_shutdown = {}", p.post_shutdown);
            let _ = writeln!(out, "web_breadth = {}", p.web_breadth);
            let _ = writeln!(out, "zoom_weekday = {}", p.zoom_weekday);
            let _ = writeln!(out, "zoom_weekend = {}", p.zoom_weekend);
            let _ = writeln!(
                out,
                "leisure_domestic = \"{}\"",
                p.leisure_domestic.to_expr()
            );
            let _ = writeln!(
                out,
                "leisure_international = \"{}\"",
                p.leisure_international.to_expr()
            );
            let _ = writeln!(out, "switch = \"{}\"", p.switch_mult.to_expr());
        }
        out
    }

    /// Parse a scenario file (strict TOML subset) and validate it.
    ///
    /// Supported syntax: `key = value` lines, `[population]`, `[policy]`,
    /// `[behavior]` sections, repeatable `[[policy.wave]]` and
    /// `[[phase]]` array sections, `#` comments, quoted strings with
    /// `\"`/`\\` escapes, booleans, integers, and floats. Unknown keys,
    /// unknown sections, and duplicate keys are hard errors.
    pub fn parse(input: &str) -> Result<Scenario, ScenarioError> {
        parse::parse(input)
    }
}

/// The strict line-based parser for the scenario file format.
mod parse {
    use super::*;
    use std::collections::HashSet;

    enum Section {
        Root,
        Population,
        Policy,
        Wave,
        Behavior,
        Phase,
    }

    #[derive(Default)]
    struct PhaseDraft {
        name: Option<String>,
        start: Option<u16>,
        end: Option<u16>,
        post_shutdown: Option<bool>,
        web_breadth: Option<usize>,
        zoom_weekday: Option<f64>,
        zoom_weekend: Option<f64>,
        leisure_domestic: Option<Curve>,
        leisure_international: Option<Curve>,
        switch_mult: Option<Curve>,
    }

    impl PhaseDraft {
        fn finish(self, index: usize) -> Result<PhaseSpec, ScenarioError> {
            let ctx = || format!("[[phase]] #{index}");
            let miss = |key: &str| ScenarioError::MissingKey {
                context: ctx(),
                key: key.to_string(),
            };
            Ok(PhaseSpec {
                name: self.name.ok_or_else(|| miss("name"))?,
                start: self.start.ok_or_else(|| miss("start"))?,
                end: self.end.ok_or_else(|| miss("end"))?,
                post_shutdown: self.post_shutdown.ok_or_else(|| miss("post_shutdown"))?,
                web_breadth: self.web_breadth.ok_or_else(|| miss("web_breadth"))?,
                zoom_weekday: self.zoom_weekday.ok_or_else(|| miss("zoom_weekday"))?,
                zoom_weekend: self.zoom_weekend.ok_or_else(|| miss("zoom_weekend"))?,
                leisure_domestic: self
                    .leisure_domestic
                    .ok_or_else(|| miss("leisure_domestic"))?,
                leisure_international: self
                    .leisure_international
                    .ok_or_else(|| miss("leisure_international"))?,
                switch_mult: self.switch_mult.ok_or_else(|| miss("switch"))?,
            })
        }
    }

    #[derive(Default)]
    struct WaveDraft {
        start: Option<u16>,
        peak: Option<u16>,
        end: Option<u16>,
        fraction: Option<f64>,
        return_day: Option<u16>,
        return_fraction: Option<f64>,
    }

    impl WaveDraft {
        fn finish(self, index: usize) -> Result<WaveSpec, ScenarioError> {
            let miss = |key: &str| ScenarioError::MissingKey {
                context: format!("[[policy.wave]] #{index}"),
                key: key.to_string(),
            };
            if self.return_fraction.is_some() && self.return_day.is_none() {
                return Err(ScenarioError::BadWave {
                    index,
                    msg: "return_fraction requires return_day".to_string(),
                });
            }
            Ok(WaveSpec {
                start: self.start.ok_or_else(|| miss("start"))?,
                peak: self.peak.ok_or_else(|| miss("peak"))?,
                end: self.end.ok_or_else(|| miss("end"))?,
                fraction: self.fraction.ok_or_else(|| miss("fraction"))?,
                return_day: self.return_day,
                return_fraction: self.return_fraction.unwrap_or(1.0),
            })
        }
    }

    /// A scalar value with its source line, for typed conversion errors.
    struct Val<'a> {
        line: usize,
        key: &'a str,
        /// `Some` for quoted strings, `None` for bare scalars.
        string: Option<String>,
        raw: &'a str,
    }

    impl Val<'_> {
        fn bad(&self, msg: &str) -> ScenarioError {
            ScenarioError::BadValue {
                line: self.line,
                key: self.key.to_string(),
                msg: msg.to_string(),
            }
        }

        fn str(self) -> Result<String, ScenarioError> {
            self.string
                .clone()
                .ok_or_else(|| self.bad("expected a quoted string"))
        }

        fn bool(self) -> Result<bool, ScenarioError> {
            if self.string.is_some() {
                return Err(self.bad("expected true or false, got a string"));
            }
            match self.raw {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(self.bad("expected true or false")),
            }
        }

        fn f64(self) -> Result<f64, ScenarioError> {
            if self.string.is_some() {
                return Err(self.bad("expected a number, got a string"));
            }
            let v: f64 = self
                .raw
                .parse()
                .map_err(|_| self.bad("expected a number"))?;
            if !v.is_finite() {
                return Err(self.bad("number must be finite"));
            }
            Ok(v)
        }

        fn u16(self) -> Result<u16, ScenarioError> {
            if self.string.is_some() {
                return Err(self.bad("expected an integer, got a string"));
            }
            self.raw
                .parse()
                .map_err(|_| self.bad("expected a non-negative integer"))
        }

        fn usize(self) -> Result<usize, ScenarioError> {
            if self.string.is_some() {
                return Err(self.bad("expected an integer, got a string"));
            }
            self.raw
                .parse()
                .map_err(|_| self.bad("expected a non-negative integer"))
        }

        fn curve(self) -> Result<Curve, ScenarioError> {
            let key = self.key.to_string();
            let s = self.str()?;
            Curve::parse_expr(&key, &s)
        }
    }

    /// Split a quoted string off `rest`, honoring `\"` and `\\` escapes;
    /// returns the unescaped string and what follows the closing quote.
    fn take_string(rest: &str) -> Option<(String, &str)> {
        let rest = rest.strip_prefix('"')?;
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    _ => return None,
                },
                '"' => return Some((out, &rest[i + 1..])),
                _ => out.push(c),
            }
        }
        None
    }

    pub(super) fn parse(input: &str) -> Result<Scenario, ScenarioError> {
        let mut section = Section::Root;
        let mut seen: HashSet<String> = HashSet::new();

        let mut name: Option<String> = None;
        let mut description: Option<String> = None;
        let mut population = PopulationSpec::default();
        let mut policy = PolicySpec::default();
        let mut behavior = BehaviorSpec::default();
        let mut waves: Vec<WaveSpec> = Vec::new();
        let mut phases: Vec<PhaseSpec> = Vec::new();
        let mut wave_draft: Option<WaveDraft> = None;
        let mut phase_draft: Option<PhaseDraft> = None;

        // Close out a pending [[policy.wave]] / [[phase]] when a new
        // section starts (or at end of input).
        macro_rules! flush_arrays {
            () => {
                if let Some(d) = wave_draft.take() {
                    waves.push(d.finish(waves.len())?);
                }
                if let Some(d) = phase_draft.take() {
                    phases.push(d.finish(phases.len())?);
                }
            };
        }

        for (idx, raw) in input.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let syntax = |msg: &str| ScenarioError::Syntax {
                line: lineno,
                msg: msg.to_string(),
            };
            if let Some(bracketed) = line.strip_prefix('[') {
                // Section header; allow a trailing comment.
                let (depth, rest) = match line.strip_prefix("[[") {
                    Some(r) => (2usize, r),
                    None => (1usize, bracketed),
                };
                let close = rest
                    .find(']')
                    .ok_or_else(|| syntax("unterminated section header"))?;
                let header = rest[..close].trim();
                let mut after = &rest[close..];
                for _ in 0..depth {
                    after = after
                        .strip_prefix(']')
                        .ok_or_else(|| syntax("mismatched section brackets"))?;
                }
                let after = after.trim_start();
                if !after.is_empty() && !after.starts_with('#') {
                    return Err(syntax("trailing junk after section header"));
                }
                flush_arrays!();
                seen.clear();
                section = match (depth, header) {
                    (1, "population") => Section::Population,
                    (1, "policy") => Section::Policy,
                    (1, "behavior") => Section::Behavior,
                    (2, "policy.wave") => {
                        wave_draft = Some(WaveDraft::default());
                        Section::Wave
                    }
                    (2, "phase") => {
                        phase_draft = Some(PhaseDraft::default());
                        Section::Phase
                    }
                    _ => {
                        return Err(ScenarioError::UnknownKey {
                            line: lineno,
                            key: format!("[{header}]"),
                        })
                    }
                };
                continue;
            }
            let eq = line
                .find('=')
                .ok_or_else(|| syntax("expected `key = value`"))?;
            let key = line[..eq].trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(syntax("malformed key"));
            }
            if !seen.insert(key.to_string()) {
                return Err(ScenarioError::DuplicateKey {
                    line: lineno,
                    key: key.to_string(),
                });
            }
            let rest = line[eq + 1..].trim();
            let val = if rest.starts_with('"') {
                let (s, tail) = take_string(rest).ok_or_else(|| syntax("unterminated string"))?;
                let tail = tail.trim_start();
                if !tail.is_empty() && !tail.starts_with('#') {
                    return Err(syntax("trailing junk after string value"));
                }
                Val {
                    line: lineno,
                    key,
                    string: Some(s),
                    raw: "",
                }
            } else {
                let scalar = rest.split('#').next().unwrap_or("").trim();
                if scalar.is_empty() {
                    return Err(syntax("missing value"));
                }
                Val {
                    line: lineno,
                    key,
                    string: None,
                    raw: scalar,
                }
            };
            let unknown = || ScenarioError::UnknownKey {
                line: lineno,
                key: key.to_string(),
            };
            match section {
                Section::Root => match key {
                    "name" => name = Some(val.str()?),
                    "description" => description = Some(val.str()?),
                    _ => return Err(unknown()),
                },
                Section::Population => match key {
                    "intl_fraction" => population.intl_fraction = Some(val.f64()?),
                    "domestic_stay_rate" => population.domestic_stay_rate = Some(val.f64()?),
                    "intl_stay_rate" => population.intl_stay_rate = Some(val.f64()?),
                    _ => return Err(unknown()),
                },
                Section::Policy => match key {
                    "departures" => policy.departures = val.bool()?,
                    "console_acquisitions" => policy.console_acquisitions = val.bool()?,
                    "console_launch_day" => policy.console_launch_day = Some(val.u16()?),
                    "console_buy_start" => policy.console_buy_start = val.u16()?,
                    "console_buy_end" => policy.console_buy_end = val.u16()?,
                    "visitor_cutoff" => policy.visitor_cutoff = val.u16()?,
                    _ => return Err(unknown()),
                },
                Section::Wave => {
                    let d = wave_draft.as_mut().unwrap_or_else(|| unreachable!());
                    match key {
                        "start" => d.start = Some(val.u16()?),
                        "peak" => d.peak = Some(val.u16()?),
                        "end" => d.end = Some(val.u16()?),
                        "fraction" => d.fraction = Some(val.f64()?),
                        "return_day" => d.return_day = Some(val.u16()?),
                        "return_fraction" => d.return_fraction = Some(val.f64()?),
                        _ => return Err(unknown()),
                    }
                }
                Section::Behavior => match key {
                    "web" => behavior.web = val.f64()?,
                    "zoom" => behavior.zoom = val.f64()?,
                    "social" => behavior.social = val.f64()?,
                    "steam" => behavior.steam = val.f64()?,
                    "switch" => behavior.switch_games = val.f64()?,
                    "facebook" => behavior.facebook = val.f64()?,
                    "instagram" => behavior.instagram = val.f64()?,
                    "tiktok" => behavior.tiktok = val.f64()?,
                    "yoy_growth" => behavior.yoy_growth = Some(val.f64()?),
                    _ => return Err(unknown()),
                },
                Section::Phase => {
                    let d = phase_draft.as_mut().unwrap_or_else(|| unreachable!());
                    match key {
                        "name" => d.name = Some(val.str()?),
                        "start" => d.start = Some(val.u16()?),
                        "end" => d.end = Some(val.u16()?),
                        "post_shutdown" => d.post_shutdown = Some(val.bool()?),
                        "web_breadth" => d.web_breadth = Some(val.usize()?),
                        "zoom_weekday" => d.zoom_weekday = Some(val.f64()?),
                        "zoom_weekend" => d.zoom_weekend = Some(val.f64()?),
                        "leisure_domestic" => d.leisure_domestic = Some(val.curve()?),
                        "leisure_international" => d.leisure_international = Some(val.curve()?),
                        "switch" => d.switch_mult = Some(val.curve()?),
                        _ => return Err(unknown()),
                    }
                }
            }
        }
        flush_arrays!();
        policy.waves = waves;
        let scenario = Scenario {
            name: name.ok_or_else(|| ScenarioError::MissingKey {
                context: "scenario".to_string(),
                key: "name".to_string(),
            })?,
            description: description.unwrap_or_default(),
            phases,
            policy,
            population,
            behavior,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::time::{Phase, StudyCalendar};

    /// The legacy hard-coded leisure multiplier (model.rs before the
    /// scenario engine), inlined here verbatim as the reference.
    fn legacy_leisure(subpop: SubPop, day: Day) -> f64 {
        let d = day.0 as f64;
        let intl = subpop == SubPop::International;
        match StudyCalendar::phase_of(day.start()) {
            Phase::PreEmergency => 1.0,
            Phase::Emergency => 1.05,
            Phase::PandemicDeclared => 1.12,
            Phase::StayAtHome => {
                if intl {
                    1.35
                } else {
                    1.18
                }
            }
            Phase::Break => {
                if intl {
                    1.95
                } else {
                    1.28
                }
            }
            Phase::OnlineTerm => {
                let (peak, floor) = if intl { (2.15, 1.50) } else { (1.78, 1.10) };
                if d <= 63.0 {
                    let base = if intl { 1.95 } else { 1.28 };
                    base + (peak - base) * ((d - 58.0) / 5.0).clamp(0.0, 1.0)
                } else {
                    peak + (floor - peak) * ((d - 63.0) / (120.0 - 63.0)).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// The legacy hard-coded Zoom hours table.
    fn legacy_zoom(day: Day) -> f64 {
        let weekend = day.weekday().is_weekend();
        match StudyCalendar::phase_of(day.start()) {
            Phase::PreEmergency => {
                if weekend {
                    0.01
                } else {
                    0.05
                }
            }
            Phase::Emergency => {
                if weekend {
                    0.02
                } else {
                    0.15
                }
            }
            Phase::PandemicDeclared => {
                if weekend {
                    0.05
                } else {
                    0.55
                }
            }
            Phase::StayAtHome => {
                if weekend {
                    0.08
                } else {
                    0.9
                }
            }
            Phase::Break => {
                if weekend {
                    0.08
                } else {
                    0.12
                }
            }
            Phase::OnlineTerm => {
                if weekend {
                    0.25
                } else {
                    2.6
                }
            }
        }
    }

    /// The legacy hard-coded Switch gameplay multiplier.
    fn legacy_switch(day: Day) -> f64 {
        let d = day.0 as f64;
        let base = match StudyCalendar::phase_of(day.start()) {
            Phase::PreEmergency => 1.0,
            Phase::Emergency => 1.05,
            Phase::PandemicDeclared => 1.15,
            Phase::StayAtHome => 1.6,
            Phase::Break => 2.7,
            Phase::OnlineTerm => {
                if d <= 67.0 {
                    2.0
                } else if d <= 95.0 {
                    2.0 - (d - 67.0) / 28.0
                } else {
                    1.0 + 0.6 * ((d - 95.0) / 25.0).min(1.0)
                }
            }
        };
        if day.weekday().is_weekend() {
            base * 1.4
        } else {
            base
        }
    }

    /// The legacy hard-coded web breadth table.
    fn legacy_breadth(day: Day) -> usize {
        match StudyCalendar::phase_of(day.start()) {
            Phase::PreEmergency | Phase::Emergency => 14,
            Phase::PandemicDeclared | Phase::StayAtHome => 15,
            Phase::Break => 18,
            Phase::OnlineTerm => 21,
        }
    }

    fn all_days() -> impl Iterator<Item = Day> {
        (0..StudyCalendar::NUM_DAYS).map(Day)
    }

    #[test]
    fn paper_2020_matches_legacy_tables_bit_for_bit() {
        let s = paper_2020();
        for day in all_days() {
            for subpop in [SubPop::Domestic, SubPop::International] {
                let got = s.leisure_multiplier(subpop, day);
                let want = legacy_leisure(subpop, day);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "leisure {subpop:?} day {}: {got} != {want}",
                    day.0
                );
            }
            assert_eq!(
                s.zoom_hours(day).to_bits(),
                legacy_zoom(day).to_bits(),
                "zoom day {}",
                day.0
            );
            assert_eq!(
                s.switch_multiplier(day).to_bits(),
                legacy_switch(day).to_bits(),
                "switch day {}",
                day.0
            );
            assert_eq!(
                s.web_breadth(day),
                legacy_breadth(day),
                "breadth day {}",
                day.0
            );
            assert_eq!(
                s.post_shutdown(day),
                StudyCalendar::phase_of(day.start()) >= Phase::StayAtHome,
                "post day {}",
                day.0
            );
        }
    }

    #[test]
    fn baseline_2019_is_flat_with_drift() {
        let s = match Scenario::builtin(BASELINE_2019) {
            Ok(s) => s,
            Err(e) => panic!("baseline-2019 must parse: {e}"),
        };
        for day in all_days() {
            let d = day.0 as f64;
            let want = 1.0 + 0.05 * (d / 120.0);
            for subpop in [SubPop::Domestic, SubPop::International] {
                assert_eq!(s.leisure_multiplier(subpop, day).to_bits(), want.to_bits());
            }
            let weekend = day.weekday().is_weekend();
            let zoom: f64 = if weekend { 0.01 } else { 0.05 };
            assert_eq!(s.zoom_hours(day).to_bits(), zoom.to_bits());
            let switch: f64 = if weekend { 1.4 } else { 1.0 };
            assert_eq!(s.switch_multiplier(day).to_bits(), switch.to_bits());
        }
        assert!(s.is_baseline());
        assert_eq!(s.effective_yoy(1.03), 1.0);
    }

    #[test]
    fn paper_counterfactual_is_builtin_baseline() {
        let cf = paper_2020().counterfactual();
        assert_eq!(cf.name, BASELINE_2019);
        let builtin = Scenario::builtin(BASELINE_2019).unwrap();
        assert_eq!(cf, builtin);
        // Idempotent: a baseline's counterfactual is itself.
        assert_eq!(cf.counterfactual(), cf);
    }

    #[test]
    fn generic_counterfactual_preserves_rng_structure() {
        let s = Scenario::builtin("staggered-reopening").unwrap();
        let cf = s.counterfactual();
        assert_eq!(cf.name, "staggered-reopening-counterfactual");
        assert!(cf.is_baseline());
        assert!(!cf.policy.departures);
        assert!(!cf.policy.console_acquisitions);
        assert_eq!(cf.policy.console_launch_day, None);
        // Wave structure and buy window survive so the per-student draw
        // sequence is identical between a scenario and its twin.
        assert_eq!(cf.policy.waves, s.policy.waves);
        assert_eq!(cf.policy.console_buy_start, s.policy.console_buy_start);
        assert_eq!(cf.policy.console_buy_end, s.policy.console_buy_end);
        assert_eq!(cf.phases.len(), s.phases.len());
        for (p, orig) in cf.phases.iter().zip(&s.phases) {
            assert_eq!(p.start, orig.start);
            assert_eq!(p.end, orig.end);
            assert_eq!(p.post_shutdown, orig.post_shutdown);
        }
        assert_eq!(cf.effective_yoy(1.03), 1.0);
        assert_eq!(cf.validate(), Ok(()));
    }

    #[test]
    fn builtin_library_exposes_four_scenarios() {
        let names = Scenario::builtin_names();
        assert_eq!(
            names,
            vec![
                "paper-2020",
                "baseline-2019",
                "favale-elearning",
                "staggered-reopening"
            ]
        );
        for name in names {
            let s = Scenario::builtin(name).unwrap();
            assert_eq!(s.name, name);
            assert_eq!(s.validate(), Ok(()));
        }
        assert!(matches!(
            Scenario::builtin("nope"),
            Err(ScenarioError::UnknownScenario { .. })
        ));
    }

    #[test]
    fn round_trip_is_a_fixpoint_for_all_builtins() {
        for s in Scenario::builtins() {
            let toml = s.to_toml();
            let back = match Scenario::parse(&toml) {
                Ok(b) => b,
                Err(e) => panic!("{}: canonical form must re-parse: {e}", s.name),
            };
            assert_eq!(&back, s, "{} round trip changed the scenario", s.name);
            assert_eq!(back.to_toml(), toml, "{} serialize not a fixpoint", s.name);
            assert_eq!(back.content_hash(), s.content_hash());
        }
    }

    #[test]
    fn phase_edges_stay_continuous() {
        // Behaviour multipliers may step at phase boundaries, but never
        // by an absurd amount: the curves in every built-in are designed
        // so adjacent days differ by < 0.8, keeping figure lines
        // plausible across scenario-defined boundaries.
        for s in Scenario::builtins() {
            for day in (1..StudyCalendar::NUM_DAYS).map(Day) {
                let prev = Day(day.0 - 1);
                for subpop in [SubPop::Domestic, SubPop::International] {
                    let jump = (s.leisure_multiplier(subpop, day)
                        - s.leisure_multiplier(subpop, prev))
                    .abs();
                    assert!(
                        jump < 0.8,
                        "{}: leisure {subpop:?} jumps {jump} at day {}",
                        s.name,
                        day.0
                    );
                }
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_keys() {
        let mut toml = paper_2020().to_toml();
        toml.push_str("\n[behavior]\nwarp_factor = 9\n");
        match Scenario::parse(&toml) {
            Err(ScenarioError::UnknownKey { key, .. }) => assert_eq!(key, "warp_factor"),
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        let toml = "name = \"x\"\nname = \"y\"\n";
        assert!(matches!(
            Scenario::parse(toml),
            Err(ScenarioError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn parse_rejects_phase_gaps_and_overlaps() {
        let mk = |second_start: u16| {
            format!(
                "name = \"t\"\n\
                 [[phase]]\nname = \"a\"\nstart = 0\nend = 50\npost_shutdown = false\n\
                 web_breadth = 14\nzoom_weekday = 0.05\nzoom_weekend = 0.01\n\
                 leisure_domestic = \"const(1)\"\nleisure_international = \"const(1)\"\n\
                 switch = \"const(1)\"\n\
                 [[phase]]\nname = \"b\"\nstart = {second_start}\nend = 120\npost_shutdown = false\n\
                 web_breadth = 14\nzoom_weekday = 0.05\nzoom_weekend = 0.01\n\
                 leisure_domestic = \"const(1)\"\nleisure_international = \"const(1)\"\n\
                 switch = \"const(1)\"\n"
            )
        };
        assert!(Scenario::parse(&mk(51)).is_ok());
        // Gap.
        assert!(matches!(
            Scenario::parse(&mk(52)),
            Err(ScenarioError::PhaseGap { .. })
        ));
        // Overlap.
        assert!(matches!(
            Scenario::parse(&mk(50)),
            Err(ScenarioError::PhaseGap { .. })
        ));
    }

    #[test]
    fn parse_rejects_out_of_range_days() {
        let toml = "name = \"t\"\n\
             [[phase]]\nname = \"a\"\nstart = 0\nend = 121\npost_shutdown = false\n\
             web_breadth = 14\nzoom_weekday = 0.05\nzoom_weekend = 0.01\n\
             leisure_domestic = \"const(1)\"\nleisure_international = \"const(1)\"\n\
             switch = \"const(1)\"\n";
        assert!(matches!(
            Scenario::parse(toml),
            Err(ScenarioError::DayOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_rejects_incomplete_coverage() {
        let toml = "name = \"t\"\n\
             [[phase]]\nname = \"a\"\nstart = 0\nend = 100\npost_shutdown = false\n\
             web_breadth = 14\nzoom_weekday = 0.05\nzoom_weekend = 0.01\n\
             leisure_domestic = \"const(1)\"\nleisure_international = \"const(1)\"\n\
             switch = \"const(1)\"\n";
        assert!(matches!(
            Scenario::parse(toml),
            Err(ScenarioError::DayOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_reports_syntax_errors_with_line_numbers() {
        match Scenario::parse("name = \"x\"\nthis is not toml\n") {
            Err(ScenarioError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn curve_expr_round_trips() {
        for expr in [
            "const(1)",
            "const(1.15)",
            "lerp(1.28, 1.78, 58, 5)",
            "rise(1, 0.6, 95, 25)",
            "drift(1, 0.05, 120)",
            "until 63: lerp(1.95, 2.15, 58, 5); lerp(2.15, 1.5, 63, 57)",
        ] {
            let c = Curve::parse_expr("test", expr).unwrap();
            assert_eq!(c.to_expr(), expr);
        }
        assert!(Curve::parse_expr("test", "warble(3)").is_err());
        assert!(Curve::parse_expr("test", "lerp(1, 2, 0, 0)").is_err());
        assert!(Curve::parse_expr("test", "until 5: const(1)").is_err());
    }

    #[test]
    fn content_hash_tracks_content() {
        let a = paper_2020();
        let mut b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
        b.behavior.zoom = 1.5;
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash_hex().len(), 16);
    }

    #[test]
    fn social_and_steam_apply_behavior_multipliers() {
        let s = paper_2020();
        let base =
            model::social_base_hours(SocialApp::Instagram, SubPop::Domestic, false).get(Month::Apr);
        assert_eq!(
            s.social_monthly_hours(SocialApp::Instagram, SubPop::Domestic, false, Month::Apr),
            base
        );
        let mut boosted = s.clone();
        boosted.behavior.social = 2.0;
        boosted.behavior.instagram = 1.5;
        assert_eq!(
            boosted.social_monthly_hours(SocialApp::Instagram, SubPop::Domestic, false, Month::Apr),
            base * 3.0
        );
        let sm = s.steam_month(SubPop::Domestic, Month::Apr);
        let mut heavy = s.clone();
        heavy.behavior.steam = 2.0;
        let sm2 = heavy.steam_month(SubPop::Domestic, Month::Apr);
        assert_eq!(sm2.median_bytes, sm.median_bytes * 2.0);
        assert_eq!(sm2.active_prob, sm.active_prob);
    }

    #[test]
    fn is_paper_default_detects_the_stock_scenario() {
        assert!(Scenario::default().is_paper_default());
        let mut tweaked = Scenario::default();
        tweaked.behavior.web = 1.1;
        assert!(!tweaked.is_paper_default());
        assert!(!Scenario::builtin(BASELINE_2019).unwrap().is_paper_default());
    }
}
