//! The student population and device inventory.
//!
//! Each student gets a sub-population label (domestic/international), a
//! departure decision (stay on campus post-shutdown, or leave on a day
//! sampled from the mid-March exodus), and a set of devices with real
//! vendor OUIs, operating systems, and observation quirks (randomized
//! MACs, silent User-Agents) that feed the classifier's error model.
//!
//! Every resident draws all of its attributes from a private RNG stream
//! (`rng_for(seed, Population, s, 0)`) and every visitor from its own
//! (`rng_for(seed, Population, v, 1)`), so any contiguous range of
//! students can be realized independently of the rest of the campus.
//! That independence is the seam the sharding layer
//! ([`crate::shard::PopulationPlan`]) is built on: a shard's slice of
//! the population is bit-identical to the same slice of the full build.

use crate::config::SimConfig;
use crate::rng::{self, Stream};
use crate::scenario::{Scenario, WaveSpec};
use devclass::{DeviceType, OuiDb, VendorClass};
use geoloc::SubPop;
use nettrace::time::Day;
use nettrace::{DeviceId, MacAddr, Oui};
use rand::Rng;

/// Ground-truth device kinds the generator knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrueKind {
    /// Smartphone (iOS or Android).
    Phone,
    /// Laptop.
    Laptop,
    /// Desktop.
    Desktop,
    /// IoT gadget (speaker, TV stick, plug, bulb, …).
    Iot,
    /// Nintendo Switch.
    Switch,
    /// Companion device with no classifiable footprint (tablet in
    /// desktop-UA mode, e-reader, device behind a randomized MAC that
    /// never speaks cleartext HTTP). These are what the paper suspects
    /// its "unclassified" devices are.
    Companion,
}

impl TrueKind {
    /// The device type an ideal classifier would assign.
    pub fn true_type(self) -> DeviceType {
        match self {
            TrueKind::Phone => DeviceType::Mobile,
            TrueKind::Laptop | TrueKind::Desktop => DeviceType::LaptopDesktop,
            TrueKind::Iot => DeviceType::Iot,
            TrueKind::Switch => DeviceType::Console,
            // Companions are genuinely mobile/desktop-class hardware; the
            // audit scores an Unclassified verdict on them as an omission.
            TrueKind::Companion => DeviceType::Mobile,
        }
    }
}

/// Mobile/desktop operating system of a device (drives UA strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOs {
    /// Apple iOS.
    Ios,
    /// Android.
    Android,
    /// Microsoft Windows.
    Windows,
    /// Apple macOS.
    MacOs,
    /// Desktop Linux.
    Linux,
    /// Device has no browser OS (IoT firmware, consoles, companions).
    None,
}

/// One device in the study.
#[derive(Debug, Clone)]
pub struct Device {
    /// Dense device index (stable across runs with the same config, and
    /// *global* across shards: a sharded build assigns the same indices
    /// as the monolithic build).
    pub index: u32,
    /// Hardware address.
    pub mac: MacAddr,
    /// Anonymized identifier, as the pipeline sees it.
    pub id: DeviceId,
    /// Ground-truth kind.
    pub kind: TrueKind,
    /// Operating system (for UA synthesis).
    pub os: DeviceOs,
    /// True when the MAC is randomized (locally administered).
    pub randomized_mac: bool,
    /// True when the device emits observable User-Agent strings.
    pub ua_visible: bool,
    /// Index of the owning student (global across shards).
    pub owner: u32,
    /// Multiplicative volume factor (log-normal per device, with a
    /// heavy-tail boost on a few IoT/companion devices — the cause of the
    /// paper's mean ≫ median observation in Figure 2).
    pub volume_factor: f64,
    /// For Switches acquired mid-study (the paper's "40 new Switches"):
    /// the day the console first comes online.
    pub acquired: Option<Day>,
}

/// One student.
#[derive(Debug, Clone)]
pub struct Student {
    /// Dense student index (global across shards).
    pub index: u32,
    /// Sub-population ground truth.
    pub subpop: SubPop,
    /// First day on campus (Day(0) for residents; later for visitors).
    pub arrives: Day,
    /// `None` = stays on campus all study (post-shutdown user);
    /// `Some(d)` = last day on campus before departing.
    pub departs: Option<Day>,
    /// Day the student comes back after departing, for scenarios whose
    /// departure wave reopens (`None` for the paper timeline: nobody
    /// returned in spring 2020).
    pub returns: Option<Day>,
    /// Global device indices owned by this student.
    pub devices: Vec<u32>,
    /// Is this student a PC gamer (owns/plays Steam)?
    pub steam_gamer: bool,
    /// Leisure engagement factor (log-normal, median 1).
    pub leisure_factor: f64,
    /// True for campus *visitors* (weekend guests, tour groups): short
    /// windows of presence that the pipeline's 14-day filter must remove
    /// (§3). Visitors were forbidden once the lock-down began.
    pub visitor: bool,
}

impl Student {
    /// Is the student on campus on `day`?
    pub fn on_campus(&self, day: Day) -> bool {
        if day < self.arrives {
            return false;
        }
        match self.departs {
            None => true,
            Some(d) => day <= d || self.returns.is_some_and(|r| day >= r),
        }
    }

    /// Is the student a post-shutdown user (present after the stay-at-home
    /// order through end of study)?
    pub fn stays(&self) -> bool {
        self.departs.is_none()
    }
}

/// The campus — the whole of it (monolithic [`Population::build`], or a
/// one-shard plan), or one shard's slice of it.
///
/// A sharded population keeps *global* student and device indices in its
/// entries while holding only its own slice of the vectors, so indexed
/// lookups must go through [`student`](Population::student) and
/// [`device`](Population::device), which translate global indices to
/// local slots. For a monolithic build both bases are zero and the
/// translation is the identity.
#[derive(Debug)]
pub struct Population {
    /// The students of this (sub-)population, in global index order.
    pub students: Vec<Student>,
    /// The devices of this (sub-)population, in global index order.
    pub devices: Vec<Device>,
    /// Global index of `students[0]`.
    pub(crate) student_base: u32,
    /// Global index of `devices[0]`.
    pub(crate) device_base: u32,
}

/// Per-kind device prevalence for leavers and stayers. Stayers carry more
/// gear (they live here); the asymmetry calibrates the post-shutdown
/// device mix in which unclassified devices dominate counts (Figure 1).
struct Prevalence {
    phone: f64,
    laptop: f64,
    desktop: f64,
    iot_mean: f64,
    switch_: f64,
    companion_mean: f64,
}

const LEAVER: Prevalence = Prevalence {
    phone: 0.96,
    laptop: 0.92,
    desktop: 0.08,
    iot_mean: 0.24,
    switch_: 0.084,
    companion_mean: 0.22,
};

const STAYER: Prevalence = Prevalence {
    phone: 0.96,
    laptop: 0.93,
    desktop: 0.14,
    iot_mean: 0.55,
    switch_: 0.13,
    companion_mean: 1.35,
};

/// Resolved population knobs plus the OUI pools: everything the
/// per-student realizers need besides the student index. Built once per
/// build/plan and shared across shards.
pub(crate) struct PopulationEnv {
    seed: u64,
    anon_key: u64,
    scenario: Scenario,
    intl_fraction: f64,
    domestic_stay_rate: f64,
    intl_stay_rate: f64,
    multi_wave: bool,
    any_returns: bool,
    total_wave_fraction: f64,
    mobile_ouis: Vec<Oui>,
    computer_ouis: Vec<Oui>,
    iot_ouis: Vec<Oui>,
    ambiguous_ouis: Vec<Oui>,
    nintendo_ouis: Vec<Oui>,
    n_residents: usize,
    n_visitors: usize,
}

impl PopulationEnv {
    pub(crate) fn new(cfg: &SimConfig) -> PopulationEnv {
        let scenario = cfg.resolved_scenario();
        let intl_fraction = scenario
            .population
            .intl_fraction
            .unwrap_or(cfg.intl_fraction);
        let domestic_stay_rate = scenario
            .population
            .domestic_stay_rate
            .unwrap_or(cfg.domestic_stay_rate);
        let intl_stay_rate = scenario
            .population
            .intl_stay_rate
            .unwrap_or(cfg.intl_stay_rate);
        let multi_wave = scenario.policy.waves.len() > 1;
        let any_returns = scenario.policy.waves.iter().any(|w| w.return_day.is_some());
        let total_wave_fraction: f64 = scenario.policy.waves.iter().map(|w| w.fraction).sum();
        let oui_db = OuiDb::builtin();
        let nintendo_ouis: Vec<Oui> = oui_db
            .ouis_of_class(VendorClass::Console)
            .into_iter()
            .filter(|o| {
                matches!(
                    oui_db.lookup(*o).map(|v| v.name),
                    Some(name) if name.contains("Nintendo")
                )
            })
            .collect();
        let n_residents = cfg.num_students();
        let n_visitors = (n_residents as f64 * 0.30).round() as usize;
        PopulationEnv {
            seed: cfg.seed,
            anon_key: cfg.anon_key,
            intl_fraction,
            domestic_stay_rate,
            intl_stay_rate,
            multi_wave,
            any_returns,
            total_wave_fraction,
            mobile_ouis: oui_db.ouis_of_class(VendorClass::Mobile),
            computer_ouis: oui_db.ouis_of_class(VendorClass::Computer),
            iot_ouis: oui_db.ouis_of_class(VendorClass::Iot),
            ambiguous_ouis: oui_db.ouis_of_class(VendorClass::Ambiguous),
            nintendo_ouis,
            n_residents,
            n_visitors,
            scenario,
        }
    }

    /// Number of resident students.
    pub(crate) fn n_residents(&self) -> usize {
        self.n_residents
    }

    /// Number of campus visitors.
    pub(crate) fn n_visitors(&self) -> usize {
        self.n_visitors
    }

    /// Realize resident `s` from its private RNG stream. `device_base`
    /// is the global index the resident's first device gets; the draw
    /// sequence never depends on it, so the same resident realizes
    /// identical attribute values whether built monolithically or
    /// inside a shard. Returned devices are in emit order.
    pub(crate) fn realize_resident(&self, s: usize, device_base: u32) -> (Student, Vec<Device>) {
        let policy = &self.scenario.policy;
        let mut rng = rng::rng_for(self.seed, Stream::Population, s as u64, 0);
        let subpop = if rng.gen::<f64>() < self.intl_fraction {
            SubPop::International
        } else {
            SubPop::Domestic
        };
        let stay_rate = match subpop {
            SubPop::Domestic => self.domestic_stay_rate,
            SubPop::International => self.intl_stay_rate,
        };
        // Draw unconditionally so the counterfactual twin consumes
        // the same RNG stream and realizes a bit-identical
        // population: one departure-day sample per wave, a
        // wave-selection draw only when there is more than one wave,
        // and a return draw only when any wave reopens. None of
        // these depend on whether departures are *enabled*.
        let stay_draw = rng.gen::<f64>();
        let wave_days: Vec<Day> = policy
            .waves
            .iter()
            .map(|w| sample_wave_day(&mut rng, w))
            .collect();
        let wave_idx = if self.multi_wave {
            let pick: f64 = rng.gen::<f64>() * self.total_wave_fraction;
            let mut acc = 0.0;
            let mut idx = policy.waves.len() - 1;
            for (i, w) in policy.waves.iter().enumerate() {
                acc += w.fraction;
                if pick < acc {
                    idx = i;
                    break;
                }
            }
            idx
        } else {
            0
        };
        let return_draw = if self.any_returns {
            rng.gen::<f64>()
        } else {
            1.0
        };
        let departs = if !policy.departures || stay_draw < stay_rate || wave_days.is_empty() {
            None
        } else {
            Some(wave_days[wave_idx])
        };
        let returns = match (departs, policy.waves.get(wave_idx)) {
            (Some(_), Some(w)) => w
                .return_day
                .filter(|_| return_draw < w.return_fraction)
                .map(Day),
            _ => None,
        };
        // Keyed on the run-invariant stay *draw*, not on realized
        // departure: device ownership is a selection effect (students
        // with more gear in the dorm were likelier to stay), so the
        // 2019 counterfactual realizes the identical inventory.
        let prev = if stay_draw < stay_rate {
            &STAYER
        } else {
            &LEAVER
        };
        let steam_gamer = rng.gen::<f64>()
            < match subpop {
                SubPop::Domestic => 0.52,
                SubPop::International => 0.72,
            };
        let leisure_factor = rng::lognormal_med(&mut rng, 1.0, 0.45);

        let mut devices: Vec<Device> = Vec::new();
        let mut my_devices = Vec::new();
        let add = |kind: TrueKind,
                   devices: &mut Vec<Device>,
                   my: &mut Vec<u32>,
                   rng: &mut rand::rngs::SmallRng,
                   acquired: Option<Day>| {
            let index = device_base + devices.len() as u32;
            let (oui, os, randomized, ua_visible) = match kind {
                TrueKind::Phone => {
                    let ios = rng.gen::<f64>() < 0.55;
                    let oui = if ios {
                        self.ambiguous_ouis[rng.gen_range(0..self.ambiguous_ouis.len())]
                    } else {
                        self.mobile_ouis[rng.gen_range(0..self.mobile_ouis.len())]
                    };
                    // A sliver of phones browse in desktop-site mode:
                    // their UA claims a desktop OS, producing the
                    // paper's rare *affirmative* misclassifications.
                    let os = if rng.gen::<f64>() < 0.03 {
                        DeviceOs::Windows
                    } else if ios {
                        DeviceOs::Ios
                    } else {
                        DeviceOs::Android
                    };
                    // Modern phones randomize WiFi MACs ~40% of the time
                    // in this era; most still emit UAs via app traffic.
                    (oui, os, rng.gen::<f64>() < 0.40, rng.gen::<f64>() < 0.84)
                }
                TrueKind::Laptop => {
                    let mac_book = rng.gen::<f64>() < 0.45;
                    let oui = if mac_book {
                        self.ambiguous_ouis[rng.gen_range(0..self.ambiguous_ouis.len())]
                    } else {
                        self.computer_ouis[rng.gen_range(0..self.computer_ouis.len())]
                    };
                    let os = if mac_book {
                        DeviceOs::MacOs
                    } else if rng.gen::<f64>() < 0.92 {
                        DeviceOs::Windows
                    } else {
                        DeviceOs::Linux
                    };
                    (oui, os, rng.gen::<f64>() < 0.08, rng.gen::<f64>() < 0.85)
                }
                TrueKind::Desktop => {
                    let oui = self.computer_ouis[rng.gen_range(0..self.computer_ouis.len())];
                    (oui, DeviceOs::Windows, false, rng.gen::<f64>() < 0.85)
                }
                TrueKind::Iot => {
                    let oui = self.iot_ouis[rng.gen_range(0..self.iot_ouis.len())];
                    (oui, DeviceOs::None, false, false)
                }
                TrueKind::Switch => {
                    let oui = self.nintendo_ouis[rng.gen_range(0..self.nintendo_ouis.len())];
                    (oui, DeviceOs::None, false, false)
                }
                TrueKind::Companion => {
                    // Tablets/e-readers: ambiguous vendor or randomized
                    // address. A quarter browse with a recognizable
                    // mobile UA (classifiable tablets); the rest never
                    // speak observable HTTP — the paper's conservative
                    // "unknown" devices.
                    let oui = self.ambiguous_ouis[rng.gen_range(0..self.ambiguous_ouis.len())];
                    let tablet_ua = rng.gen::<f64>() < 0.18;
                    let os = if tablet_ua {
                        DeviceOs::Ios
                    } else {
                        DeviceOs::None
                    };
                    (oui, os, rng.gen::<f64>() < 0.6, tablet_ua)
                }
            };
            let mut mac = MacAddr::from_oui_suffix(oui, index);
            if randomized {
                // Set the locally-administered bit, as OS randomization
                // does; the original OUI is no longer meaningful.
                let mut octets = mac.0;
                octets[0] |= 0x02;
                octets[1] ^= (index >> 3) as u8; // decouple from vendor
                mac = MacAddr(octets);
            }
            // Device-level volume heterogeneity; a few IoT/companion
            // devices are extreme (always-on cameras, seed boxes).
            let mut volume_factor = rng::lognormal_med(rng, 1.0, 0.55);
            if matches!(kind, TrueKind::Iot | TrueKind::Companion) && rng.gen::<f64>() < 0.03 {
                volume_factor *= rng.gen_range(80.0..400.0);
            }
            devices.push(Device {
                index,
                mac,
                id: DeviceId::anonymize(mac, self.anon_key),
                kind,
                os,
                randomized_mac: randomized,
                ua_visible,
                owner: s as u32,
                volume_factor,
                acquired,
            });
            my.push(index);
        };

        if rng.gen::<f64>() < prev.phone {
            add(
                TrueKind::Phone,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        }
        if rng.gen::<f64>() < prev.laptop {
            add(
                TrueKind::Laptop,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        }
        if rng.gen::<f64>() < prev.desktop {
            add(
                TrueKind::Desktop,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        }
        for _ in 0..rng::poisson(&mut rng, prev.iot_mean) {
            add(TrueKind::Iot, &mut devices, &mut my_devices, &mut rng, None);
        }
        let has_switch = rng.gen::<f64>() < prev.switch_;
        let buys_switch = rng.gen::<f64>() < 0.028;
        let buy_day = Day(rng.gen_range(policy.console_buy_start..policy.console_buy_end));
        if has_switch {
            add(
                TrueKind::Switch,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        } else if stay_draw < stay_rate && buys_switch {
            // Lock-down console purchases (Animal Crossing effect,
            // §5.3.2): a new Switch appears inside the scenario's buy
            // window. The branch condition must not depend on whether
            // acquisitions are *enabled*, so the counterfactual
            // realizes the identical device list (there the console
            // simply exists all along).
            let acquired = policy.console_acquisitions.then_some(buy_day);
            add(
                TrueKind::Switch,
                &mut devices,
                &mut my_devices,
                &mut rng,
                acquired,
            );
        }
        for _ in 0..rng::poisson(&mut rng, prev.companion_mean) {
            add(
                TrueKind::Companion,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        }
        // Everyone has at least a phone: guarantee non-empty inventory.
        if my_devices.is_empty() {
            add(
                TrueKind::Phone,
                &mut devices,
                &mut my_devices,
                &mut rng,
                None,
            );
        }

        let student = Student {
            index: s as u32,
            subpop,
            arrives: Day(0),
            departs,
            returns,
            devices: my_devices,
            steam_gamer,
            leisure_factor,
            visitor: false,
        };
        (student, devices)
    }

    /// Realize visitor `v` from its private RNG stream. `s_index` is the
    /// visitor's global student index (`n_residents + v`) and
    /// `device_base` the global index of its first device; neither
    /// affects the draw sequence.
    pub(crate) fn realize_visitor(
        &self,
        v: usize,
        s_index: u32,
        device_base: u32,
    ) -> (Student, Vec<Device>) {
        // Campus visitors: short-stay guests whose devices appear for a
        // few days and must be discarded by the §3 visitor filter. The
        // lock-down banned visitors, so every window ends at the
        // scenario's visitor cut-off (the stay-at-home order in the
        // paper timeline).
        let policy = &self.scenario.policy;
        let mut rng = rng::rng_for(self.seed, Stream::Population, v as u64, 1);
        let arrive = Day(rng.gen_range(0..42));
        let stay_days: u16 = 1 + rng.gen_range(0..6);
        let depart = Day((arrive.0 + stay_days).min(policy.visitor_cutoff));
        let mut devices: Vec<Device> = Vec::new();
        let mut my_devices = Vec::new();
        // Visitors bring a phone; a third also carry a laptop.
        let phone_ios = rng.gen::<f64>() < 0.55;
        let (oui, os) = if phone_ios {
            (
                self.ambiguous_ouis[rng.gen_range(0..self.ambiguous_ouis.len())],
                DeviceOs::Ios,
            )
        } else {
            (
                self.mobile_ouis[rng.gen_range(0..self.mobile_ouis.len())],
                DeviceOs::Android,
            )
        };
        let mut push_visitor_device =
            |kind: TrueKind, oui: Oui, os: DeviceOs, rng: &mut rand::rngs::SmallRng| {
                let index = device_base + devices.len() as u32;
                let randomized = rng.gen::<f64>() < 0.5;
                let mut mac = MacAddr::from_oui_suffix(oui, 0x40_0000 + index);
                if randomized {
                    let mut octets = mac.0;
                    octets[0] |= 0x02;
                    mac = MacAddr(octets);
                }
                devices.push(Device {
                    index,
                    mac,
                    id: DeviceId::anonymize(mac, self.anon_key),
                    kind,
                    os,
                    randomized_mac: randomized,
                    ua_visible: rng.gen::<f64>() < 0.6,
                    owner: s_index,
                    volume_factor: rng::lognormal_med(rng, 1.0, 0.5),
                    acquired: None,
                });
                my_devices.push(index);
            };
        push_visitor_device(TrueKind::Phone, oui, os, &mut rng);
        if rng.gen::<f64>() < 0.33 {
            let oui = self.computer_ouis[rng.gen_range(0..self.computer_ouis.len())];
            push_visitor_device(TrueKind::Laptop, oui, DeviceOs::Windows, &mut rng);
        }
        let student = Student {
            index: s_index,
            subpop: SubPop::Domestic,
            arrives: arrive,
            departs: Some(depart),
            returns: None,
            devices: my_devices,
            steam_gamer: false,
            leisure_factor: rng::lognormal_med(&mut rng, 1.0, 0.4),
            visitor: true,
        };
        (student, devices)
    }
}

impl Population {
    /// Build the whole population for `cfg`. Deterministic in `cfg.seed`.
    ///
    /// Population structure is driven by the resolved [`Scenario`]: its
    /// policy block decides whether departures happen at all, which
    /// wave(s) students leave in and whether they come back, the console
    /// acquisition window, and the visitor cut-off; its population block
    /// may override the config's enrollment mix. The per-student RNG
    /// draw sequence depends only on the wave *structure* (never on
    /// realized outcomes), so a scenario and its counterfactual twin —
    /// which keeps the same waves with `departures = false` — build
    /// bit-identical device inventories.
    ///
    /// For memory-bounded builds of large campuses, partition the same
    /// population into independently buildable shards with
    /// [`PopulationPlan`](crate::shard::PopulationPlan) instead.
    ///
    /// [`Scenario`]: crate::scenario::Scenario
    pub fn build(cfg: &SimConfig) -> Population {
        Self::build_full(&PopulationEnv::new(cfg))
    }

    /// The monolithic build: all residents, then all visitors.
    pub(crate) fn build_full(env: &PopulationEnv) -> Population {
        let n = env.n_residents();
        let mut students = Vec::with_capacity(n + env.n_visitors());
        let mut devices: Vec<Device> = Vec::new();
        for s in 0..n {
            let (student, devs) = env.realize_resident(s, devices.len() as u32);
            students.push(student);
            devices.extend(devs);
        }
        for v in 0..env.n_visitors() {
            let s_index = students.len() as u32;
            let (student, devs) = env.realize_visitor(v, s_index, devices.len() as u32);
            students.push(student);
            devices.extend(devs);
        }
        Population {
            students,
            devices,
            student_base: 0,
            device_base: 0,
        }
    }

    /// Assemble a (sub-)population from pre-realized parts. Internal to
    /// the shard planner.
    pub(crate) fn from_parts(
        students: Vec<Student>,
        devices: Vec<Device>,
        student_base: u32,
        device_base: u32,
    ) -> Population {
        Population {
            students,
            devices,
            student_base,
            device_base,
        }
    }

    /// Global index of `students[0]` (0 for a monolithic build).
    pub fn student_base(&self) -> u32 {
        self.student_base
    }

    /// Global index of `devices[0]` (0 for a monolithic build).
    pub fn device_base(&self) -> u32 {
        self.device_base
    }

    /// The student with *global* index `index`. Panics if the student
    /// is not part of this (sub-)population.
    pub fn student(&self, index: u32) -> &Student {
        &self.students[(index - self.student_base) as usize]
    }

    /// The device with *global* index `index`. Panics if the device is
    /// not part of this (sub-)population.
    pub fn device(&self, index: u32) -> &Device {
        &self.devices[(index - self.device_base) as usize]
    }

    /// Devices owned by post-shutdown (staying) students, excluding
    /// consoles acquired later than the study start.
    pub fn post_shutdown_devices(&self) -> Vec<&Device> {
        self.devices
            .iter()
            .filter(|d| self.student(d.owner).stays())
            .collect()
    }

    /// The owning student of a device.
    pub fn owner_of(&self, d: &Device) -> &Student {
        self.student(d.owner)
    }

    /// Is `device` present on campus on `day`? (Owner present, and the
    /// device already acquired.)
    pub fn device_present(&self, device: &Device, day: Day) -> bool {
        if let Some(acq) = device.acquired {
            if day < acq {
                return false;
            }
        }
        self.student(device.owner).on_campus(day)
    }
}

/// Sample a departure day from one scenario wave: a triangular
/// distribution over `[start, end]` peaking at `peak`. For the paper's
/// single wave (Mar 8 .. Mar 24, peak Mar 15) this reproduces the
/// original mid-March exodus sampler draw-for-draw (§4: "students
/// started leaving campus even before classes became fully remote").
fn sample_wave_day<R: Rng>(rng: &mut R, wave: &WaveSpec) -> Day {
    let a = wave.start as f64;
    let c = wave.peak as f64;
    let b = wave.end as f64;
    let u: f64 = rng.gen();
    let fc = (c - a) / (b - a);
    let d = if u < fc {
        a + (u * (b - a) * (c - a)).sqrt()
    } else {
        b - ((1.0 - u) * (b - a) * (b - c)).sqrt()
    };
    Day(d.round().clamp(a, b) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn small_cfg() -> SimConfig {
        SimConfig {
            scale: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn visitors_are_short_stay_and_pre_lockdown() {
        let p = Population::build(&small_cfg());
        let visitors: Vec<&Student> = p.students.iter().filter(|s| s.visitor).collect();
        assert!(!visitors.is_empty());
        for v in visitors {
            let dep = v.departs.expect("visitors always depart");
            assert!(dep.0 < 47, "visitor on campus after the stay-at-home order");
            assert!(dep.0 >= v.arrives.0);
            assert!(dep.0 - v.arrives.0 <= 7, "visit too long");
            assert!(!v.on_campus(Day(dep.0 + 1)));
            assert!(!v.on_campus(Day(v.arrives.0.saturating_sub(1))) || v.arrives.0 == 0);
            assert!((1..=2).contains(&v.devices.len()));
        }
    }

    #[test]
    fn population_is_deterministic() {
        let cfg = small_cfg();
        let a = Population::build(&cfg);
        let b = Population::build(&cfg);
        assert_eq!(a.students.len(), b.students.len());
        assert_eq!(a.devices.len(), b.devices.len());
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.mac, y.mac);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn population_counts_scale() {
        let cfg = small_cfg();
        let p = Population::build(&cfg);
        let residents = p.students.iter().filter(|s| !s.visitor).count();
        assert_eq!(residents, 650);
        // Visitors are ~30% of the resident count.
        let visitors = p.students.iter().filter(|s| s.visitor).count();
        assert_eq!(visitors, 195);
        // ~2.7 devices per resident on average.
        let resident_devices = p.devices.iter().filter(|d| !p.owner_of(d).visitor).count();
        let per_student = resident_devices as f64 / residents as f64;
        assert!((2.0..3.6).contains(&per_student), "{per_student}");
    }

    #[test]
    fn stayers_match_configured_rates_roughly() {
        let cfg = SimConfig {
            scale: 0.5,
            ..Default::default()
        };
        let p = Population::build(&cfg);
        let residents = p.students.iter().filter(|s| !s.visitor).count();
        let stayers = p.students.iter().filter(|s| s.stays()).count();
        let frac = stayers as f64 / residents as f64;
        // Blended stay rate ≈ 0.75*0.14 + 0.25*0.18 = 0.15.
        assert!((0.12..0.19).contains(&frac), "stay fraction {frac}");
        // International over-representation among stayers.
        let intl_stayers = p
            .students
            .iter()
            .filter(|s| s.stays() && s.subpop == SubPop::International)
            .count();
        let intl_frac = intl_stayers as f64 / stayers as f64;
        assert!(
            intl_frac > cfg.intl_fraction,
            "intl stayer fraction {intl_frac} should exceed enrollment {}",
            cfg.intl_fraction
        );
    }

    #[test]
    fn departure_days_fall_in_march_window() {
        let cfg = small_cfg();
        let p = Population::build(&cfg);
        for s in p.students.iter().filter(|s| !s.visitor) {
            if let Some(d) = s.departs {
                assert!(
                    (36..=52).contains(&d.0),
                    "departure {} outside exodus window",
                    d.0
                );
                assert!(!s.on_campus(Day(d.0 + 1)));
                assert!(s.on_campus(d));
            }
        }
    }

    #[test]
    fn counterfactual_has_no_departures_or_new_switches() {
        let cfg = Scenario::counterfactual_of(&small_cfg());
        let p = Population::build(&cfg);
        // Residents all stay; visitors remain short-stay guests in 2019
        // too (their windows are pandemic-independent by construction).
        assert!(p.students.iter().filter(|s| !s.visitor).all(|s| s.stays()));
        assert!(p.devices.iter().all(|d| d.acquired.is_none()));
    }

    #[test]
    fn counterfactual_population_is_bit_identical() {
        // The RNG draw sequence must not depend on realized outcomes:
        // the twin realizes the same students, devices, and MACs.
        let cfg = small_cfg();
        let a = Population::build(&cfg);
        let b = Population::build(&Scenario::counterfactual_of(&cfg));
        assert_eq!(a.students.len(), b.students.len());
        assert_eq!(a.devices.len(), b.devices.len());
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.mac, y.mac);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.volume_factor.to_bits(), y.volume_factor.to_bits());
        }
        for (x, y) in a.students.iter().zip(&b.students) {
            assert_eq!(x.subpop, y.subpop);
            assert_eq!(x.leisure_factor.to_bits(), y.leisure_factor.to_bits());
        }
    }

    #[test]
    fn multi_wave_scenario_departures_and_returns() {
        let mut cfg = SimConfig {
            scale: 0.5,
            ..Default::default()
        };
        cfg.scenario = Scenario::builtin("staggered-reopening").unwrap();
        let p = Population::build(&cfg);
        let mut first_wave = 0usize;
        let mut second_wave = 0usize;
        let mut returned = 0usize;
        for s in p.students.iter().filter(|s| !s.visitor) {
            match s.departs {
                None => assert_eq!(s.returns, None),
                Some(d) if (36..=52).contains(&d.0) => {
                    first_wave += 1;
                    if let Some(r) = s.returns {
                        assert_eq!(r.0, 75, "first wave reopens on day 75");
                        assert!(!s.on_campus(Day(60)));
                        assert!(s.on_campus(Day(80)));
                        returned += 1;
                    }
                }
                Some(d) => {
                    assert!((100..=110).contains(&d.0), "unexpected wave day {}", d.0);
                    second_wave += 1;
                    assert_eq!(s.returns, None, "second wave has no reopening");
                }
            }
        }
        assert!(first_wave > 0 && second_wave > 0, "both waves populated");
        // fraction = 0.7 / 0.3: the first wave dominates.
        assert!(first_wave > second_wave);
        // return_fraction = 0.55 of the first wave comes back.
        assert!(returned > 0);
        let frac = returned as f64 / first_wave as f64;
        assert!((0.4..0.7).contains(&frac), "return fraction {frac}");
        // Campus occupancy rebounds at the reopening, then drops again
        // after the second wave empties it.
        let on = |d: u16| {
            p.students
                .iter()
                .filter(|s| !s.visitor && s.on_campus(Day(d)))
                .count()
        };
        assert!(on(80) > on(74), "reopening should raise occupancy");
        assert!(on(120) < on(99), "second wave should lower occupancy");
    }

    #[test]
    fn scenario_population_overrides_replace_config_mix() {
        let mut cfg = SimConfig {
            scale: 0.5,
            ..Default::default()
        };
        cfg.scenario = Scenario::builtin("favale-elearning").unwrap();
        let p = Population::build(&cfg);
        let residents: Vec<&Student> = p.students.iter().filter(|s| !s.visitor).collect();
        let intl = residents
            .iter()
            .filter(|s| s.subpop == SubPop::International)
            .count();
        let frac = intl as f64 / residents.len() as f64;
        // The scenario pins intl_fraction at 0.08, far below the
        // config's 0.25.
        assert!((0.05..0.12).contains(&frac), "intl fraction {frac}");
    }

    #[test]
    fn macs_are_unique() {
        let p = Population::build(&small_cfg());
        let mut macs: Vec<MacAddr> = p.devices.iter().map(|d| d.mac).collect();
        macs.sort();
        macs.dedup();
        assert_eq!(macs.len(), p.devices.len());
    }

    #[test]
    fn randomized_macs_have_local_bit() {
        let p = Population::build(&small_cfg());
        for d in &p.devices {
            if d.randomized_mac {
                assert!(d.mac.is_locally_administered(), "{}", d.mac);
            }
        }
    }

    #[test]
    fn acquired_switches_only_on_stayers_in_april_may() {
        let p = Population::build(&SimConfig {
            scale: 0.5,
            ..Default::default()
        });
        let acquired: Vec<&Device> = p.devices.iter().filter(|d| d.acquired.is_some()).collect();
        assert!(!acquired.is_empty(), "expected some lock-down Switch buys");
        for d in &acquired {
            assert_eq!(d.kind, TrueKind::Switch);
            assert!(p.owner_of(d).stays());
            let day = d.acquired.unwrap();
            assert!(day.0 >= 60, "acquired day {}", day.0);
            assert!(!p.device_present(d, Day(day.0 - 1)));
            assert!(p.device_present(d, day));
        }
    }

    #[test]
    fn post_shutdown_devices_belong_to_stayers() {
        let p = Population::build(&small_cfg());
        for d in p.post_shutdown_devices() {
            assert!(p.owner_of(d).stays());
        }
    }

    #[test]
    fn device_presence_follows_owner() {
        let p = Population::build(&small_cfg());
        let leaver_dev = p
            .devices
            .iter()
            .find(|d| !p.owner_of(d).stays() && d.acquired.is_none())
            .expect("some leaver device");
        let dep = p.owner_of(leaver_dev).departs.unwrap();
        assert!(p.device_present(leaver_dev, Day(0)));
        assert!(!p.device_present(leaver_dev, Day(dep.0 + 5)));
    }
}
