//! The synthetic Internet: every hostname the campus resolves, with
//! stable server addresses placed in the geolocation atlas's hosting
//! regions.
//!
//! The directory is the single source of truth shared by the generator
//! (which samples destinations from it) and the pipeline (which resolves
//! and geolocates them through the ordinary DNS/GeoDb code paths). Apps
//! live where their real counterparts do: Zoom inside its published IP
//! ranges, TikTok partly in Asia, Nintendo in Japan, the Chinese/Korean/
//! Japanese/Indian consumer services abroad — that placement is what
//! drives the §4.2 midpoint classifier.

use appsig::App;
use dnslog::{DomainId, DomainTable};
use geoloc::{builtin_regions, Region};
use nettrace::ip::Ipv4Cidr;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What role a service plays in workload synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// A measured application.
    App(App),
    /// Generic US-hosted web service (news, streaming, search, campus).
    BackgroundUs,
    /// Foreign-hosted consumer service.
    BackgroundForeign,
    /// IoT manufacturer backend.
    IotBackend,
}

/// A resolvable service.
#[derive(Debug, Clone)]
pub struct Service {
    /// Interned hostname.
    pub domain: DomainId,
    /// Server addresses (all inside the hosting region's prefix).
    pub ips: Vec<Ipv4Addr>,
    /// Role.
    pub kind: ServiceKind,
    /// Hosting region name (diagnostics).
    pub region: &'static str,
}

/// Dense service identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceId(pub u32);

/// The frozen directory.
#[derive(Debug)]
pub struct ServiceDirectory {
    table: DomainTable,
    services: Vec<Service>,
    by_app: HashMap<App, Vec<ServiceId>>,
    background_us: Vec<ServiceId>,
    background_foreign: Vec<ServiceId>,
    iot_backends: Vec<ServiceId>,
}

/// Number of synthetic US background sites beyond the named ones.
pub const SYNTH_US_SITES: usize = 300;
/// Number of synthetic foreign background sites.
pub const SYNTH_FOREIGN_SITES: usize = 120;

impl ServiceDirectory {
    /// Build the world. Deterministic (placement is index-based).
    pub fn build() -> ServiceDirectory {
        let regions: HashMap<&'static str, Region> =
            builtin_regions().into_iter().map(|r| (r.name, r)).collect();
        let mut table = DomainTable::new();
        let mut services = Vec::new();
        let mut by_app: HashMap<App, Vec<ServiceId>> = HashMap::new();
        let mut background_us = Vec::new();
        let mut background_foreign = Vec::new();
        let mut iot_backends = Vec::new();

        let mut ip_cursor: HashMap<&'static str, u32> = HashMap::new();
        let alloc_ips = |region: &Region, n: u32, cursor: &mut HashMap<&'static str, u32>| {
            let c = cursor.entry(region.name).or_insert(1024);
            let ips: Vec<Ipv4Addr> = (0..n).map(|k| region.prefix.nth(*c + k)).collect();
            *c += n;
            ips
        };
        let alloc_in_range = |range: Ipv4Cidr, base: u32, n: u32| -> Vec<Ipv4Addr> {
            (0..n).map(|k| range.nth(base + k)).collect()
        };

        let push = |table: &mut DomainTable,
                    services: &mut Vec<Service>,
                    hostname: &str,
                    ips: Vec<Ipv4Addr>,
                    kind: ServiceKind,
                    region: &'static str|
         -> ServiceId {
            // Builtin hostnames are valid by construction; if one ever is
            // not, interning a stable placeholder keeps directory
            // construction total instead of panicking.
            let domain = table.intern_str(hostname).unwrap_or_else(|_| {
                debug_assert!(false, "builtin hostname {hostname:?} failed to validate");
                table.intern(dnslog::DomainName::invalid_placeholder())
            });
            let id = ServiceId(services.len() as u32);
            services.push(Service {
                domain,
                ips,
                kind,
                region,
            });
            id
        };

        // Measured applications.
        for app in App::ALL {
            let region_names: &[&str] = match app {
                App::Zoom => &["us-east"], // placed inside Zoom's IP ranges below
                App::Facebook | App::Instagram => &["us-east", "us-west"],
                App::TikTok => &["us-west", "sg"],
                // Steam delivers downloads from regional (US) edges for
                // US clients; placing content in Europe would distort the
                // §4.2 midpoints of heavy players.
                App::Steam => &["us-west", "us-central", "us-east"],
                App::SwitchGameplay => &["jp-tokyo", "us-west"],
                App::SwitchServices => &["jp-tokyo", "us-east"],
                App::Cdn => &["cdn-global"],
            };
            for (i, hostname) in appsig::builtin::hostnames(app).iter().enumerate() {
                let (ips, region_name) = if app == App::Zoom {
                    // Zoom hosts inside its published ranges; the last
                    // hostname uses the *historical* range so the Wayback
                    // stage of the signature is exercised.
                    let ranges = appsig::builtin::zoom_current_ranges();
                    let hist = appsig::builtin::zoom_historical_ranges();
                    let range = if i == appsig::builtin::hostnames(app).len() - 1 {
                        hist[0]
                    } else {
                        ranges[i % ranges.len()]
                    };
                    (alloc_in_range(range, 64 + 8 * i as u32, 6), "us-east")
                } else {
                    let rname = region_names[i % region_names.len()];
                    let region = &regions[rname];
                    (alloc_ips(region, 4, &mut ip_cursor), region.name)
                };
                let id = push(
                    &mut table,
                    &mut services,
                    hostname,
                    ips,
                    ServiceKind::App(app),
                    region_name,
                );
                by_app.entry(app).or_default().push(id);
            }
        }

        // IoT backends.
        for (i, hostname) in devclass::iot::iot_hostnames().iter().enumerate() {
            let rname = ["us-east", "us-west"][i % 2];
            let region = &regions[rname];
            let ips = alloc_ips(region, 2, &mut ip_cursor);
            let id = push(
                &mut table,
                &mut services,
                hostname,
                ips,
                ServiceKind::IotBackend,
                region.name,
            );
            iot_backends.push(id);
        }

        // Named background services.
        for (i, hostname) in appsig::builtin::background_hostnames().iter().enumerate() {
            let rname = ["us-west", "us-east", "us-central"][i % 3];
            let region = &regions[rname];
            let ips = alloc_ips(region, 4, &mut ip_cursor);
            let id = push(
                &mut table,
                &mut services,
                hostname,
                ips,
                ServiceKind::BackgroundUs,
                region.name,
            );
            background_us.push(id);
        }
        for (i, hostname) in appsig::builtin::foreign_hostnames().iter().enumerate() {
            let rname = foreign_region_for(hostname);
            let region = &regions[rname];
            let ips = alloc_ips(region, 3, &mut ip_cursor);
            let id = push(
                &mut table,
                &mut services,
                hostname,
                ips,
                ServiceKind::BackgroundForeign,
                region.name,
            );
            let _ = i;
            background_foreign.push(id);
        }

        // Synthetic long-tail sites (give the distinct-sites statistic a
        // population to grow into).
        for i in 0..SYNTH_US_SITES {
            let hostname = format!("www.site{i:04}.com");
            let rname = ["us-west", "us-east", "us-central"][i % 3];
            let region = &regions[rname];
            let ips = alloc_ips(region, 2, &mut ip_cursor);
            let id = push(
                &mut table,
                &mut services,
                &hostname,
                ips,
                ServiceKind::BackgroundUs,
                region.name,
            );
            background_us.push(id);
        }
        for i in 0..SYNTH_FOREIGN_SITES {
            let (suffix, rname) = match i % 4 {
                0 => ("com.cn", "cn-east"),
                1 => ("com.cn", "cn-north"),
                2 => ("co.kr", "kr-seoul"),
                _ => ("co.in", "in-mumbai"),
            };
            let hostname = format!("www.abroad{i:04}.{suffix}");
            let region = &regions[rname];
            let ips = alloc_ips(region, 2, &mut ip_cursor);
            let id = push(
                &mut table,
                &mut services,
                &hostname,
                ips,
                ServiceKind::BackgroundForeign,
                region.name,
            );
            background_foreign.push(id);
        }

        ServiceDirectory {
            table,
            services,
            by_app,
            background_us,
            background_foreign,
            iot_backends,
        }
    }

    /// The frozen domain table (shared with the pipeline).
    pub fn table(&self) -> &DomainTable {
        &self.table
    }

    /// A service by id.
    pub fn service(&self, id: ServiceId) -> &Service {
        &self.services[id.0 as usize]
    }

    /// All services of a measured application.
    pub fn app_services(&self, app: App) -> &[ServiceId] {
        self.by_app.get(&app).map_or(&[], Vec::as_slice)
    }

    /// US background services (named + synthetic).
    pub fn background_us(&self) -> &[ServiceId] {
        &self.background_us
    }

    /// Foreign background services (named + synthetic).
    pub fn background_foreign(&self) -> &[ServiceId] {
        &self.background_foreign
    }

    /// IoT manufacturer backends.
    pub fn iot_backends(&self) -> &[ServiceId] {
        &self.iot_backends
    }

    /// Total service count.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Is the directory empty? (Never, after `build`.)
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Pick one of a service's addresses deterministically by `salt`.
    pub fn pick_ip(&self, id: ServiceId, salt: u64) -> Ipv4Addr {
        let s = self.service(id);
        s.ips[(salt % s.ips.len() as u64) as usize]
    }
}

fn foreign_region_for(hostname: &str) -> &'static str {
    if hostname.ends_with(".com.cn") {
        "cn-east"
    } else if hostname.ends_with(".co.kr") {
        "kr-seoul"
    } else if hostname.ends_with(".co.jp") {
        "jp-tokyo"
    } else if hostname.ends_with(".co.in") {
        "in-mumbai"
    } else {
        "de-frankfurt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoloc::{builtin_geodb, CountryCode};

    #[test]
    fn directory_builds_and_is_nonempty() {
        let d = ServiceDirectory::build();
        assert!(d.len() > 400, "{}", d.len());
        assert!(!d.is_empty());
        for app in App::ALL {
            assert!(!d.app_services(app).is_empty(), "{app}");
        }
        assert!(!d.iot_backends().is_empty());
        assert!(d.background_us().len() > SYNTH_US_SITES);
        assert!(d.background_foreign().len() > SYNTH_FOREIGN_SITES);
    }

    #[test]
    fn every_service_geolocates_consistently() {
        let d = ServiceDirectory::build();
        let db = builtin_geodb();
        for i in 0..d.len() {
            let s = d.service(ServiceId(i as u32));
            for ip in &s.ips {
                let entry = db
                    .lookup(*ip)
                    .unwrap_or_else(|| panic!("unlocatable ip {ip} for service {i}"));
                let _ = entry;
            }
        }
    }

    #[test]
    fn zoom_ips_match_zoom_signature() {
        let d = ServiceDirectory::build();
        let sigs = appsig::study_signatures();
        for &sid in d.app_services(App::Zoom) {
            for ip in &d.service(sid).ips {
                assert_eq!(sigs.classify_ip(*ip), Some(App::Zoom), "{ip}");
            }
        }
    }

    #[test]
    fn foreign_services_are_abroad_us_background_domestic() {
        let d = ServiceDirectory::build();
        let db = builtin_geodb();
        for &sid in d.background_foreign() {
            let s = d.service(sid);
            let c = db.lookup(s.ips[0]).unwrap().country;
            assert_ne!(c, CountryCode::US, "{:?}", s.region);
        }
        for &sid in d.background_us() {
            let s = d.service(sid);
            let c = db.lookup(s.ips[0]).unwrap().country;
            assert_eq!(c, CountryCode::US);
        }
    }

    #[test]
    fn app_hostnames_classify_via_signatures() {
        let d = ServiceDirectory::build();
        let sigs = appsig::study_signatures();
        for app in App::ALL {
            for &sid in d.app_services(app) {
                let name = d.table().name(d.service(sid).domain);
                assert_eq!(sigs.classify_domain(name), Some(app), "{name}");
            }
        }
    }

    #[test]
    fn synthetic_sites_have_distinct_registered_domains() {
        let d = ServiceDirectory::build();
        use std::collections::HashSet;
        let mut regs = HashSet::new();
        for &sid in d.background_us() {
            let name = d.table().name(d.service(sid).domain);
            regs.insert(name.registered_domain().to_owned());
        }
        assert!(regs.len() > SYNTH_US_SITES, "{}", regs.len());
    }

    #[test]
    fn pick_ip_is_stable_and_in_service() {
        let d = ServiceDirectory::build();
        let sid = d.app_services(App::Steam)[0];
        let a = d.pick_ip(sid, 99);
        let b = d.pick_ip(sid, 99);
        assert_eq!(a, b);
        assert!(d.service(sid).ips.contains(&a));
    }

    #[test]
    fn no_duplicate_ips_across_services() {
        let d = ServiceDirectory::build();
        use std::collections::HashSet;
        let mut seen: HashSet<Ipv4Addr> = HashSet::new();
        for i in 0..d.len() {
            for ip in &d.service(ServiceId(i as u32)).ips {
                assert!(seen.insert(*ip), "duplicate ip {ip}");
            }
        }
    }
}
