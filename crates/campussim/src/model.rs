//! The behavioural model: calibration tables mapping (sub-population,
//! phase, month, device kind) to activity rates.
//!
//! Every constant here encodes a claim from the paper's evaluation;
//! comments cite the claim. EXPERIMENTS.md records how the resulting
//! synthetic figures compare against the paper's. Shapes (who rises, who
//! falls, where crossovers sit) are the calibration target — absolute
//! bytes are a free parameter of the substituted workload.

use crate::population::TrueKind;
use crate::scenario::MonthTable;
use geoloc::SubPop;
use nettrace::time::{Day, Month, Weekday};

/// Social apps measured in Figure 6, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocialApp {
    /// Facebook (Figure 6a).
    Facebook,
    /// Instagram (Figure 6b).
    Instagram,
    /// TikTok (Figure 6c).
    TikTok,
}

impl SocialApp {
    /// All three, figure order.
    pub const ALL: [SocialApp; 3] = [SocialApp::Facebook, SocialApp::Instagram, SocialApp::TikTok];
}

/// Weekend volume discount. The paper's population keeps its weekend dips
/// all through lock-down ("a trend not found in other measurement
/// studies", §4.1).
pub fn weekend_volume_factor(weekday: Weekday) -> f64 {
    if weekday.is_weekend() {
        0.78
    } else {
        1.0
    }
}

/// Probability the device produces any traffic on a given day.
pub fn active_probability(kind: TrueKind, weekday: Weekday, post_shutdown_phase: bool) -> f64 {
    match kind {
        // Always-on gear.
        TrueKind::Iot => 0.995,
        TrueKind::Switch => {
            if weekday.is_weekend() {
                0.92
            } else {
                0.80
            }
        }
        // Interactive devices: weekday-heavy pre-pandemic (weekend trips),
        // slightly flatter when everyone is locked in but still dipping.
        _ => match (weekday.is_weekend(), post_shutdown_phase) {
            (false, _) => 0.95,
            (true, false) => 0.78,
            (true, true) => 0.74,
        },
    }
}

/// Expected background-web sessions per active day, by device kind.
pub fn web_sessions_per_day(kind: TrueKind) -> f64 {
    match kind {
        TrueKind::Phone => 10.0,
        TrueKind::Laptop => 9.0,
        TrueKind::Desktop => 8.0,
        TrueKind::Companion => 5.0,
        TrueKind::Iot => 0.0,
        TrueKind::Switch => 0.0,
    }
}

/// Mean background-web session length, minutes.
pub const WEB_SESSION_MINUTES: f64 = 14.0;

/// Median background-web bytes per minute, by device kind.
pub fn web_bytes_per_minute(kind: TrueKind) -> f64 {
    match kind {
        TrueKind::Phone => 1.6e6,
        TrueKind::Laptop => 2.0e6,
        TrueKind::Desktop => 2.2e6,
        TrueKind::Companion => 1.1e6,
        TrueKind::Iot | TrueKind::Switch => 0.0,
    }
}

/// Byte-weighted share of a student's background web traffic that goes
/// to foreign-hosted services. Heterogeneous for international students
/// (0.25–0.75 by a stable per-student draw): the low end reproduces the
/// paper's conservative misclassification of internationals whose mix
/// looks domestic (§4.2).
pub fn foreign_web_share(subpop: SubPop, student_unit: f64) -> f64 {
    match subpop {
        SubPop::Domestic => 0.04,
        SubPop::International => {
            // Bimodal: roughly a third of international students consume
            // an almost entirely US-hosted diet ("assimilated"); the
            // classifier conservatively labels them domestic, which is
            // how the paper's measured 18% sits below the true share.
            if student_unit < 0.18 {
                0.06
            } else {
                0.18 + 0.55 * (student_unit - 0.18) / 0.82
            }
        }
    }
}

/// Median Zoom bytes per hour of meeting.
pub const ZOOM_BYTES_PER_HOUR: f64 = 115e6;

/// Monthly *median* aggregate duration (hours) per active mobile device
/// for a social app, per sub-population and trend cohort, as an
/// explicit month-keyed table (the scenario layer scales these by its
/// behaviour multipliers in `Scenario::social_monthly_hours`).
///
/// Cohorts capture the paper's heterogeneity: "a portion of domestic
/// users kept increasing their TikTok usage, while some users went back
/// to pre-pandemic levels in May" (§5.2). `escalator` devices ramp all
/// study; the majority cohort follows the median trends of Figure 6.
pub fn social_base_hours(app: SocialApp, subpop: SubPop, escalator: bool) -> MonthTable {
    match (app, subpop, escalator) {
        // Figure 6a: domestic Facebook flat Feb–Mar, dropping by May;
        // international rising through the shutdown.
        (SocialApp::Facebook, SubPop::Domestic, false) => MonthTable::new(2.2, 2.2, 1.9, 1.25),
        (SocialApp::Facebook, SubPop::Domestic, true) => MonthTable::new(2.2, 2.6, 2.9, 3.1),
        (SocialApp::Facebook, SubPop::International, false) => MonthTable::new(1.05, 1.5, 1.7, 1.6),
        (SocialApp::Facebook, SubPop::International, true) => MonthTable::new(1.05, 1.8, 2.3, 2.5),
        // Figure 6b: domestic Instagram flat then May decrease;
        // international increases in May.
        (SocialApp::Instagram, SubPop::Domestic, false) => MonthTable::new(2.6, 2.6, 2.45, 1.75),
        (SocialApp::Instagram, SubPop::Domestic, true) => MonthTable::new(2.6, 3.0, 3.2, 3.4),
        (SocialApp::Instagram, SubPop::International, false) => {
            MonthTable::new(1.7, 2.05, 2.05, 3.2)
        }
        (SocialApp::Instagram, SubPop::International, true) => MonthTable::new(1.7, 2.4, 2.8, 3.4),
        // Figure 6c: domestic TikTok median up in March, down in April,
        // back to February's level in May; escalators keep climbing
        // (rising 3rd quartile / 99th percentile).
        (SocialApp::TikTok, SubPop::Domestic, false) => MonthTable::new(3.0, 3.9, 3.1, 2.3),
        (SocialApp::TikTok, SubPop::Domestic, true) => MonthTable::new(3.0, 4.8, 6.6, 8.4),
        (SocialApp::TikTok, SubPop::International, false) => MonthTable::new(1.2, 1.7, 1.8, 1.05),
        (SocialApp::TikTok, SubPop::International, true) => MonthTable::new(1.2, 2.2, 2.9, 3.6),
    }
}

/// Fraction of devices in the escalating cohort.
pub fn social_escalator_fraction(app: SocialApp, subpop: SubPop) -> f64 {
    match (app, subpop) {
        (SocialApp::TikTok, SubPop::Domestic) => 0.24,
        (SocialApp::TikTok, SubPop::International) => 0.20,
        _ => 0.15,
    }
}

/// Log-space dispersion of per-device monthly social duration. TikTok
/// international shows the most variance ("a lot more variance in TikTok
/// usage for this user group", §5.2).
pub fn social_sigma(app: SocialApp, subpop: SubPop) -> f64 {
    match (app, subpop) {
        (SocialApp::TikTok, SubPop::International) => 2.3,
        (SocialApp::TikTok, SubPop::Domestic) => 2.0,
        _ => 1.8,
    }
}

/// Probability a mobile device is active on a social app in a month.
/// TikTok adoption grows across the study (rising n in Figure 6c).
pub fn social_monthly_active_prob(app: SocialApp, subpop: SubPop, month: Month) -> f64 {
    let table = match (app, subpop) {
        (SocialApp::Facebook, SubPop::Domestic) => MonthTable::new(0.76, 0.76, 0.72, 0.76),
        (SocialApp::Facebook, SubPop::International) => MonthTable::new(0.70, 0.71, 0.70, 0.71),
        (SocialApp::Instagram, SubPop::Domestic) => MonthTable::new(0.69, 0.69, 0.65, 0.68),
        (SocialApp::Instagram, SubPop::International) => MonthTable::new(0.55, 0.59, 0.55, 0.55),
        (SocialApp::TikTok, SubPop::Domestic) => MonthTable::new(0.34, 0.40, 0.44, 0.48),
        (SocialApp::TikTok, SubPop::International) => MonthTable::new(0.23, 0.30, 0.35, 0.38),
    };
    table.get(month)
}

/// Mean social session length, minutes (sessions per month follow from
/// the monthly duration target divided by this).
pub const SOCIAL_SESSION_MINUTES: f64 = 9.0;

/// Median social-app bytes per minute of session.
pub const SOCIAL_BYTES_PER_MINUTE: f64 = 2.5e6;

/// Steam monthly model (Figure 7): activity probability, median bytes,
/// median connection count — per sub-population and month.
#[derive(Debug, Clone, Copy)]
pub struct SteamMonth {
    /// Probability a Steam-capable device is active this month.
    pub active_prob: f64,
    /// Median bytes for active devices.
    pub median_bytes: f64,
    /// Median connection (flow) count for active devices.
    pub median_conns: f64,
}

/// The Figure 7 tables. Domestic bytes spike in March and fall through
/// May; international spikes harder in March–April then collapses; the
/// domestic connection median *declines* monotonically while
/// international's jumps in March (the paper's bytes-vs-connections
/// divergence, §5.3.1). May has the most active domestic devices.
pub fn steam_month(subpop: SubPop, month: Month) -> SteamMonth {
    let (active, bytes, conns) = match subpop {
        SubPop::Domestic => (
            MonthTable::new(0.25, 0.35, 0.35, 0.455),
            MonthTable::new(80e6, 300e6, 195e6, 110e6),
            MonthTable::new(60.0, 48.0, 38.0, 29.0),
        ),
        SubPop::International => (
            MonthTable::new(0.22, 0.39, 0.33, 0.33),
            MonthTable::new(100e6, 520e6, 450e6, 140e6),
            MonthTable::new(40.0, 72.0, 50.0, 44.0),
        ),
    };
    SteamMonth {
        active_prob: active.get(month),
        median_bytes: bytes.get(month),
        median_conns: conns.get(month),
    }
}

/// Log-space dispersion of Steam monthly bytes (Figure 7a's whiskers
/// span from bytes to gigabytes) and connections.
pub const STEAM_BYTES_SIGMA: f64 = 2.6;
/// Dispersion of monthly Steam connection counts.
pub const STEAM_CONNS_SIGMA: f64 = 1.2;

/// Baseline Switch gameplay hours per active day.
pub const SWITCH_GAMEPLAY_HOURS: f64 = 1.1;
/// Median gameplay bytes per hour (low-rate session/p2p traffic).
pub const SWITCH_GAMEPLAY_BYTES_PER_HOUR: f64 = 20e6;
/// Expected update/download events per Switch per day.
pub const SWITCH_UPDATE_RATE: f64 = 0.08;
/// Median bytes of one update/download.
pub const SWITCH_UPDATE_BYTES: f64 = 600e6;
/// Animal Crossing release day (2020-03-20), when a burst of downloads
/// hits the Nintendo CDN.
pub const ANIMAL_CROSSING_DAY: Day = Day(48);

/// IoT device model: backend chatter dominates (Saidi detection needs
/// ≥50% of bytes to manufacturer clouds).
pub const IOT_SESSIONS_PER_DAY: f64 = 22.0;
/// Median IoT bytes per day.
pub const IOT_BYTES_PER_DAY: f64 = 22e6;
/// Fraction of IoT bytes going to the manufacturer backend.
pub const IOT_BACKEND_SHARE: f64 = 0.86;

/// Share of a device's web bytes that ride CDNs (excluded from
/// geolocation midpoints, §4.2).
pub const CDN_SHARE: f64 = 0.22;

/// Hour-of-day weight for placing session starts.
///
/// `post_spike` selects the post-shutdown weekday shape: "traffic spikes
/// earlier in the day and peaks at higher volumes than in February.
/// In contrast, weekends are relatively unchanged." (Figure 3, §4.1)
pub fn diurnal_weight(kind: DiurnalKind, post_spike: bool, weekend: bool, hour: u32) -> f64 {
    debug_assert!(hour < 24);
    let h = hour as usize;
    match kind {
        DiurnalKind::Leisure => {
            if weekend {
                // Weekend shape (stable across the study).
                const W: [f64; 24] = [
                    0.30, 0.18, 0.10, 0.06, 0.04, 0.04, 0.05, 0.08, 0.14, 0.25, 0.40, 0.55, 0.65,
                    0.70, 0.72, 0.72, 0.74, 0.78, 0.85, 0.95, 1.00, 0.95, 0.75, 0.50,
                ];
                W[h]
            } else if post_spike {
                // Lock-down weekdays: earlier and higher.
                const W: [f64; 24] = [
                    0.28, 0.16, 0.09, 0.05, 0.04, 0.04, 0.06, 0.15, 0.45, 0.75, 0.92, 1.00, 1.00,
                    0.98, 0.95, 0.92, 0.92, 0.95, 1.00, 1.05, 1.05, 0.95, 0.70, 0.45,
                ];
                W[h]
            } else {
                // Pre-pandemic weekdays: classes keep daytime lighter;
                // evening peak.
                const W: [f64; 24] = [
                    0.25, 0.14, 0.08, 0.05, 0.03, 0.03, 0.05, 0.10, 0.22, 0.30, 0.35, 0.42, 0.50,
                    0.45, 0.42, 0.45, 0.55, 0.70, 0.85, 0.95, 1.00, 0.95, 0.70, 0.45,
                ];
                W[h]
            }
        }
        DiurnalKind::Class => {
            if weekend {
                // Small weekend afternoon bump (§5.1).
                const W: [f64; 24] = [
                    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50,
                    0.50, 0.40, 0.30, 0.20, 0.10, 0.05, 0.02, 0.0, 0.0, 0.0,
                ];
                W[h]
            } else {
                // "Most active from 8am to 6pm on weekdays" (§5.1).
                const W: [f64; 24] = [
                    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.80, 1.00, 1.00, 1.00, 0.85, 1.00,
                    1.00, 1.00, 0.95, 0.80, 0.40, 0.15, 0.05, 0.02, 0.0, 0.0,
                ];
                W[h]
            }
        }
        DiurnalKind::Gaming => {
            const W: [f64; 24] = [
                0.45, 0.30, 0.18, 0.10, 0.05, 0.03, 0.03, 0.05, 0.10, 0.18, 0.30, 0.42, 0.50, 0.55,
                0.60, 0.65, 0.72, 0.80, 0.90, 1.00, 1.00, 0.95, 0.80, 0.60,
            ];
            W[h]
        }
        DiurnalKind::Flat => 1.0,
    }
}

/// Diurnal profile families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiurnalKind {
    /// Web browsing, social media, streaming.
    Leisure,
    /// Zoom classes.
    Class,
    /// Steam and console play.
    Gaming,
    /// Always-on device chatter.
    Flat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_tables_match_figure6_trends() {
        use Month::*;
        let social_monthly_hours =
            |app, subpop, esc: bool, m| social_base_hours(app, subpop, esc).get(m);
        // 6a: domestic FB declines by May; international rises from Feb.
        let dom = |m| social_monthly_hours(SocialApp::Facebook, SubPop::Domestic, false, m);
        let intl = |m| social_monthly_hours(SocialApp::Facebook, SubPop::International, false, m);
        assert!(dom(May) < dom(Feb));
        assert!(intl(May) > intl(Feb));
        assert!(dom(Feb) > intl(Feb)); // FB more popular domestically in Feb
        assert!(dom(May) - intl(May) < dom(Feb) - intl(Feb)); // gap narrows

        // 6b: domestic IG May decrease; international May increase.
        let dom = |m| social_monthly_hours(SocialApp::Instagram, SubPop::Domestic, false, m);
        let intl = |m| social_monthly_hours(SocialApp::Instagram, SubPop::International, false, m);
        assert!(dom(May) < dom(Apr));
        assert!(intl(May) > intl(Apr));

        // 6c: domestic TikTok up in March, down in April, back to Feb in
        // May; escalators strictly increasing.
        let dom = |m| social_monthly_hours(SocialApp::TikTok, SubPop::Domestic, false, m);
        assert!(dom(Mar) > dom(Feb));
        assert!(dom(Apr) < dom(Mar));
        assert!(
            dom(May) <= dom(Feb),
            "May should return to (or below) February"
        );
        let esc = |m| social_monthly_hours(SocialApp::TikTok, SubPop::Domestic, true, m);
        assert!(esc(Mar) > esc(Feb) && esc(Apr) > esc(Mar) && esc(May) > esc(Apr));
        // International much less active on TikTok than domestic.
        assert!(
            social_monthly_hours(SocialApp::TikTok, SubPop::International, false, Feb)
                < dom(Feb) / 2.0
        );
    }

    #[test]
    fn tiktok_adoption_grows() {
        use Month::*;
        for sp in [SubPop::Domestic, SubPop::International] {
            let p = |m| social_monthly_active_prob(SocialApp::TikTok, sp, m);
            assert!(p(Feb) < p(Mar) && p(Mar) < p(Apr) && p(Apr) < p(May));
        }
    }

    #[test]
    fn steam_tables_match_figure7() {
        use Month::*;
        // Bytes: March spike for both; May collapse; intl peak > dom peak.
        let dom = |m| steam_month(SubPop::Domestic, m);
        let intl = |m| steam_month(SubPop::International, m);
        assert!(dom(Mar).median_bytes > 3.0 * dom(Feb).median_bytes);
        assert!(dom(May).median_bytes < dom(Mar).median_bytes);
        assert!(intl(Mar).median_bytes > dom(Mar).median_bytes);
        assert!(intl(May).median_bytes < intl(Apr).median_bytes);
        // Connections: domestic declines monotonically; intl spikes in March.
        assert!(dom(Feb).median_conns > dom(Mar).median_conns);
        assert!(dom(Mar).median_conns > dom(Apr).median_conns);
        assert!(dom(Apr).median_conns > dom(May).median_conns);
        assert!(intl(Mar).median_conns > intl(Feb).median_conns);
        assert!(intl(Apr).median_conns < intl(Mar).median_conns);
        // Active-device counts: May is domestic Steam's biggest month.
        assert!(dom(May).active_prob > dom(Apr).active_prob);
    }

    #[test]
    fn diurnal_shapes() {
        // Zoom: silent at night, strong 10am weekdays.
        assert_eq!(diurnal_weight(DiurnalKind::Class, true, false, 3), 0.0);
        assert!(diurnal_weight(DiurnalKind::Class, true, false, 10) > 0.9);
        // Post-shutdown weekday leisure rises earlier than pre-pandemic.
        let pre9 = diurnal_weight(DiurnalKind::Leisure, false, false, 9);
        let post9 = diurnal_weight(DiurnalKind::Leisure, true, false, 9);
        assert!(post9 > 2.0 * pre9, "{pre9} vs {post9}");
        // Weekends identical across the study.
        for h in 0..24 {
            assert_eq!(
                diurnal_weight(DiurnalKind::Leisure, false, true, h),
                diurnal_weight(DiurnalKind::Leisure, true, true, h)
            );
        }
        // Flat is flat.
        for h in 0..24 {
            assert_eq!(diurnal_weight(DiurnalKind::Flat, false, false, h), 1.0);
        }
    }

    #[test]
    fn foreign_share_heterogeneity() {
        assert!(foreign_web_share(SubPop::Domestic, 0.5) < 0.1);
        assert!((foreign_web_share(SubPop::International, 0.0) - 0.06).abs() < 1e-12);
        assert!((foreign_web_share(SubPop::International, 1.0) - 0.73).abs() < 1e-12);
        // Bimodal: the assimilated cohort sits at the domestic-like level.
        assert!(foreign_web_share(SubPop::International, 0.17) < 0.1);
        assert!(foreign_web_share(SubPop::International, 0.19) > 0.17);
    }

    #[test]
    fn month_table_lookup_is_explicit() {
        use Month::*;
        let t = MonthTable::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(t.get(Feb), 1.0);
        assert_eq!(t.get(Mar), 2.0);
        assert_eq!(t.get(Apr), 3.0);
        assert_eq!(t.get(May), 4.0);
        // steam/social tables go through the same explicit lookup.
        assert_eq!(steam_month(SubPop::Domestic, May).active_prob, 0.455);
        assert_eq!(
            social_base_hours(SocialApp::TikTok, SubPop::Domestic, false).get(Mar),
            3.9
        );
    }
}
