//! The behavioural model: calibration tables mapping (sub-population,
//! phase, month, device kind) to activity rates.
//!
//! Every constant here encodes a claim from the paper's evaluation;
//! comments cite the claim. EXPERIMENTS.md records how the resulting
//! synthetic figures compare against the paper's. Shapes (who rises, who
//! falls, where crossovers sit) are the calibration target — absolute
//! bytes are a free parameter of the substituted workload.

use crate::population::TrueKind;
use geoloc::SubPop;
use nettrace::time::{Day, Month, Phase, StudyCalendar, Weekday};

/// Social apps measured in Figure 6, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocialApp {
    /// Facebook (Figure 6a).
    Facebook,
    /// Instagram (Figure 6b).
    Instagram,
    /// TikTok (Figure 6c).
    TikTok,
}

impl SocialApp {
    /// All three, figure order.
    pub const ALL: [SocialApp; 3] = [SocialApp::Facebook, SocialApp::Instagram, SocialApp::TikTok];
}

/// Day-level leisure (non-Zoom, non-class) volume multiplier relative to
/// the February baseline.
///
/// Encodes: the April spike and May decay back toward pre-pandemic
/// levels (§4.1, §6); international students' volume rising during break
/// while domestic stays flat, and staying elevated all term (Figure 4).
pub fn leisure_multiplier(pandemic: bool, subpop: SubPop, day: Day) -> f64 {
    let d = day.0 as f64;
    if !pandemic {
        // The 2019 counterfactual: no pandemic response, just the usual
        // in-term drift upward (late-term leisure and finals streaming).
        // This is what makes the paper's +53%-vs-2019 land below its
        // +58%-vs-February.
        return 1.0 + 0.05 * (d / 120.0);
    }
    match StudyCalendar::phase_of(day.start()) {
        Phase::PreEmergency => 1.0,
        Phase::Emergency => 1.05,
        Phase::PandemicDeclared => 1.12,
        Phase::StayAtHome => match subpop {
            SubPop::Domestic => 1.18,
            SubPop::International => 1.35,
        },
        Phase::Break => match subpop {
            // The biggest gap in Figure 4: break traffic rises sharply for
            // international students, stays near-flat for domestic.
            SubPop::Domestic => 1.28,
            SubPop::International => 1.95,
        },
        Phase::OnlineTerm => {
            // Peak in early April (study day ≈ 63), linear decay to late May.
            let (peak, floor) = match subpop {
                SubPop::Domestic => (1.78, 1.10),
                SubPop::International => (2.15, 1.50),
            };
            if d <= 63.0 {
                // Ramp from break level to the peak.
                let base = match subpop {
                    SubPop::Domestic => 1.28,
                    SubPop::International => 1.95,
                };
                base + (peak - base) * ((d - 58.0) / 5.0).clamp(0.0, 1.0)
            } else {
                peak + (floor - peak) * ((d - 63.0) / (120.0 - 63.0)).clamp(0.0, 1.0)
            }
        }
    }
}

/// Weekend volume discount. The paper's population keeps its weekend dips
/// all through lock-down ("a trend not found in other measurement
/// studies", §4.1).
pub fn weekend_volume_factor(weekday: Weekday) -> f64 {
    if weekday.is_weekend() {
        0.78
    } else {
        1.0
    }
}

/// Probability the device produces any traffic on a given day.
pub fn active_probability(kind: TrueKind, weekday: Weekday, post_shutdown_phase: bool) -> f64 {
    match kind {
        // Always-on gear.
        TrueKind::Iot => 0.995,
        TrueKind::Switch => {
            if weekday.is_weekend() {
                0.92
            } else {
                0.80
            }
        }
        // Interactive devices: weekday-heavy pre-pandemic (weekend trips),
        // slightly flatter when everyone is locked in but still dipping.
        _ => match (weekday.is_weekend(), post_shutdown_phase) {
            (false, _) => 0.95,
            (true, false) => 0.78,
            (true, true) => 0.74,
        },
    }
}

/// Expected background-web sessions per active day, by device kind.
pub fn web_sessions_per_day(kind: TrueKind) -> f64 {
    match kind {
        TrueKind::Phone => 10.0,
        TrueKind::Laptop => 9.0,
        TrueKind::Desktop => 8.0,
        TrueKind::Companion => 5.0,
        TrueKind::Iot => 0.0,
        TrueKind::Switch => 0.0,
    }
}

/// Mean background-web session length, minutes.
pub const WEB_SESSION_MINUTES: f64 = 14.0;

/// Median background-web bytes per minute, by device kind.
pub fn web_bytes_per_minute(kind: TrueKind) -> f64 {
    match kind {
        TrueKind::Phone => 1.6e6,
        TrueKind::Laptop => 2.0e6,
        TrueKind::Desktop => 2.2e6,
        TrueKind::Companion => 1.1e6,
        TrueKind::Iot | TrueKind::Switch => 0.0,
    }
}

/// Byte-weighted share of a student's background web traffic that goes
/// to foreign-hosted services. Heterogeneous for international students
/// (0.25–0.75 by a stable per-student draw): the low end reproduces the
/// paper's conservative misclassification of internationals whose mix
/// looks domestic (§4.2).
pub fn foreign_web_share(subpop: SubPop, student_unit: f64) -> f64 {
    match subpop {
        SubPop::Domestic => 0.04,
        SubPop::International => {
            // Bimodal: roughly a third of international students consume
            // an almost entirely US-hosted diet ("assimilated"); the
            // classifier conservatively labels them domestic, which is
            // how the paper's measured 18% sits below the true share.
            if student_unit < 0.18 {
                0.06
            } else {
                0.18 + 0.55 * (student_unit - 0.18) / 0.82
            }
        }
    }
}

/// How many distinct background sites a device's *home set* spans, per
/// phase. Growth here drives the "+34% distinct sites" statistic (§4.1).
pub fn web_breadth(phase: Phase) -> usize {
    match phase {
        Phase::PreEmergency | Phase::Emergency => 14,
        Phase::PandemicDeclared | Phase::StayAtHome => 15,
        Phase::Break => 18,
        Phase::OnlineTerm => 21,
    }
}

/// Expected Zoom hours for a student on a given day (§5.1: classes
/// 8am–6pm weekdays after 3/30; small weekend use for clubs/family).
pub fn zoom_hours(pandemic: bool, day: Day) -> f64 {
    let weekend = day.weekday().is_weekend();
    if !pandemic {
        return if weekend { 0.01 } else { 0.05 };
    }
    match StudyCalendar::phase_of(day.start()) {
        Phase::PreEmergency => {
            if weekend {
                0.01
            } else {
                0.05
            }
        }
        Phase::Emergency => {
            if weekend {
                0.02
            } else {
                0.15
            }
        }
        Phase::PandemicDeclared => {
            if weekend {
                0.05
            } else {
                0.55
            }
        }
        Phase::StayAtHome => {
            if weekend {
                0.08
            } else {
                0.9 // remote finals week
            }
        }
        Phase::Break => {
            if weekend {
                0.08
            } else {
                0.12
            }
        }
        Phase::OnlineTerm => {
            if weekend {
                0.25 // the paper's small weekend afternoon bump
            } else {
                2.6
            }
        }
    }
}

/// Median Zoom bytes per hour of meeting.
pub const ZOOM_BYTES_PER_HOUR: f64 = 115e6;

/// Monthly *median* aggregate duration (hours) per active mobile device
/// for a social app, per sub-population and trend cohort.
///
/// Cohorts capture the paper's heterogeneity: "a portion of domestic
/// users kept increasing their TikTok usage, while some users went back
/// to pre-pandemic levels in May" (§5.2). `escalator` devices ramp all
/// study; the majority cohort follows the median trends of Figure 6.
pub fn social_monthly_hours(app: SocialApp, subpop: SubPop, escalator: bool, month: Month) -> f64 {
    use Month::*;
    let m = month.index();
    let table: [f64; 4] = match (app, subpop, escalator) {
        // Figure 6a: domestic Facebook flat Feb–Mar, dropping by May;
        // international rising through the shutdown.
        (SocialApp::Facebook, SubPop::Domestic, false) => [2.2, 2.2, 1.9, 1.25],
        (SocialApp::Facebook, SubPop::Domestic, true) => [2.2, 2.6, 2.9, 3.1],
        (SocialApp::Facebook, SubPop::International, false) => [1.05, 1.5, 1.7, 1.6],
        (SocialApp::Facebook, SubPop::International, true) => [1.05, 1.8, 2.3, 2.5],
        // Figure 6b: domestic Instagram flat then May decrease;
        // international increases in May.
        (SocialApp::Instagram, SubPop::Domestic, false) => [2.6, 2.6, 2.45, 1.75],
        (SocialApp::Instagram, SubPop::Domestic, true) => [2.6, 3.0, 3.2, 3.4],
        (SocialApp::Instagram, SubPop::International, false) => [1.7, 2.05, 2.05, 3.2],
        (SocialApp::Instagram, SubPop::International, true) => [1.7, 2.4, 2.8, 3.4],
        // Figure 6c: domestic TikTok median up in March, down in April,
        // back to February's level in May; escalators keep climbing
        // (rising 3rd quartile / 99th percentile).
        (SocialApp::TikTok, SubPop::Domestic, false) => [3.0, 3.9, 3.1, 2.3],
        (SocialApp::TikTok, SubPop::Domestic, true) => [3.0, 4.8, 6.6, 8.4],
        (SocialApp::TikTok, SubPop::International, false) => [1.2, 1.7, 1.8, 1.05],
        (SocialApp::TikTok, SubPop::International, true) => [1.2, 2.2, 2.9, 3.6],
    };
    let _ = (Feb, Mar, Apr, May); // document the index order
    table[m]
}

/// Fraction of devices in the escalating cohort.
pub fn social_escalator_fraction(app: SocialApp, subpop: SubPop) -> f64 {
    match (app, subpop) {
        (SocialApp::TikTok, SubPop::Domestic) => 0.24,
        (SocialApp::TikTok, SubPop::International) => 0.20,
        _ => 0.15,
    }
}

/// Log-space dispersion of per-device monthly social duration. TikTok
/// international shows the most variance ("a lot more variance in TikTok
/// usage for this user group", §5.2).
pub fn social_sigma(app: SocialApp, subpop: SubPop) -> f64 {
    match (app, subpop) {
        (SocialApp::TikTok, SubPop::International) => 2.3,
        (SocialApp::TikTok, SubPop::Domestic) => 2.0,
        _ => 1.8,
    }
}

/// Probability a mobile device is active on a social app in a month.
/// TikTok adoption grows across the study (rising n in Figure 6c).
pub fn social_monthly_active_prob(app: SocialApp, subpop: SubPop, month: Month) -> f64 {
    let m = month.index();
    match (app, subpop) {
        (SocialApp::Facebook, SubPop::Domestic) => [0.76, 0.76, 0.72, 0.76][m],
        (SocialApp::Facebook, SubPop::International) => [0.70, 0.71, 0.70, 0.71][m],
        (SocialApp::Instagram, SubPop::Domestic) => [0.69, 0.69, 0.65, 0.68][m],
        (SocialApp::Instagram, SubPop::International) => [0.55, 0.59, 0.55, 0.55][m],
        (SocialApp::TikTok, SubPop::Domestic) => [0.34, 0.40, 0.44, 0.48][m],
        (SocialApp::TikTok, SubPop::International) => [0.23, 0.30, 0.35, 0.38][m],
    }
}

/// Mean social session length, minutes (sessions per month follow from
/// the monthly duration target divided by this).
pub const SOCIAL_SESSION_MINUTES: f64 = 9.0;

/// Median social-app bytes per minute of session.
pub const SOCIAL_BYTES_PER_MINUTE: f64 = 2.5e6;

/// Steam monthly model (Figure 7): activity probability, median bytes,
/// median connection count — per sub-population and month.
#[derive(Debug, Clone, Copy)]
pub struct SteamMonth {
    /// Probability a Steam-capable device is active this month.
    pub active_prob: f64,
    /// Median bytes for active devices.
    pub median_bytes: f64,
    /// Median connection (flow) count for active devices.
    pub median_conns: f64,
}

/// The Figure 7 tables. Domestic bytes spike in March and fall through
/// May; international spikes harder in March–April then collapses; the
/// domestic connection median *declines* monotonically while
/// international's jumps in March (the paper's bytes-vs-connections
/// divergence, §5.3.1). May has the most active domestic devices.
pub fn steam_month(subpop: SubPop, month: Month) -> SteamMonth {
    let m = month.index();
    match subpop {
        SubPop::Domestic => SteamMonth {
            active_prob: [0.25, 0.35, 0.35, 0.455][m],
            median_bytes: [80e6, 300e6, 195e6, 110e6][m],
            median_conns: [60.0, 48.0, 38.0, 29.0][m],
        },
        SubPop::International => SteamMonth {
            active_prob: [0.22, 0.39, 0.33, 0.33][m],
            median_bytes: [100e6, 520e6, 450e6, 140e6][m],
            median_conns: [40.0, 72.0, 50.0, 44.0][m],
        },
    }
}

/// Log-space dispersion of Steam monthly bytes (Figure 7a's whiskers
/// span from bytes to gigabytes) and connections.
pub const STEAM_BYTES_SIGMA: f64 = 2.6;
/// Dispersion of monthly Steam connection counts.
pub const STEAM_CONNS_SIGMA: f64 = 1.2;

/// Switch gameplay-hours multiplier per day (Figure 8): heavy spikes
/// during break and the early Spring term, a trough in late April, and a
/// rise again in mid-May.
pub fn switch_gameplay_multiplier(pandemic: bool, day: Day) -> f64 {
    let weekend_boost = if day.weekday().is_weekend() { 1.4 } else { 1.0 };
    if !pandemic {
        return weekend_boost;
    }
    let d = day.0 as f64;
    let base = match StudyCalendar::phase_of(day.start()) {
        Phase::PreEmergency => 1.0,
        Phase::Emergency => 1.05,
        Phase::PandemicDeclared => 1.15,
        Phase::StayAtHome => 1.6, // Animal Crossing lands 3/20
        Phase::Break => 2.7,
        Phase::OnlineTerm => {
            if d <= 67.0 {
                2.0 // early-term spill-over
            } else if d <= 95.0 {
                // decay to near pre-pandemic by late April
                2.0 - (d - 67.0) / 28.0
            } else {
                // boredom kicks back in through May
                1.0 + 0.6 * ((d - 95.0) / 25.0).min(1.0)
            }
        }
    };
    base * weekend_boost
}

/// Baseline Switch gameplay hours per active day.
pub const SWITCH_GAMEPLAY_HOURS: f64 = 1.1;
/// Median gameplay bytes per hour (low-rate session/p2p traffic).
pub const SWITCH_GAMEPLAY_BYTES_PER_HOUR: f64 = 20e6;
/// Expected update/download events per Switch per day.
pub const SWITCH_UPDATE_RATE: f64 = 0.08;
/// Median bytes of one update/download.
pub const SWITCH_UPDATE_BYTES: f64 = 600e6;
/// Animal Crossing release day (2020-03-20), when a burst of downloads
/// hits the Nintendo CDN.
pub const ANIMAL_CROSSING_DAY: Day = Day(48);

/// IoT device model: backend chatter dominates (Saidi detection needs
/// ≥50% of bytes to manufacturer clouds).
pub const IOT_SESSIONS_PER_DAY: f64 = 22.0;
/// Median IoT bytes per day.
pub const IOT_BYTES_PER_DAY: f64 = 22e6;
/// Fraction of IoT bytes going to the manufacturer backend.
pub const IOT_BACKEND_SHARE: f64 = 0.86;

/// Share of a device's web bytes that ride CDNs (excluded from
/// geolocation midpoints, §4.2).
pub const CDN_SHARE: f64 = 0.22;

/// Hour-of-day weight for placing session starts.
///
/// `post_spike` selects the post-shutdown weekday shape: "traffic spikes
/// earlier in the day and peaks at higher volumes than in February.
/// In contrast, weekends are relatively unchanged." (Figure 3, §4.1)
pub fn diurnal_weight(kind: DiurnalKind, post_spike: bool, weekend: bool, hour: u32) -> f64 {
    debug_assert!(hour < 24);
    let h = hour as usize;
    match kind {
        DiurnalKind::Leisure => {
            if weekend {
                // Weekend shape (stable across the study).
                const W: [f64; 24] = [
                    0.30, 0.18, 0.10, 0.06, 0.04, 0.04, 0.05, 0.08, 0.14, 0.25, 0.40, 0.55, 0.65,
                    0.70, 0.72, 0.72, 0.74, 0.78, 0.85, 0.95, 1.00, 0.95, 0.75, 0.50,
                ];
                W[h]
            } else if post_spike {
                // Lock-down weekdays: earlier and higher.
                const W: [f64; 24] = [
                    0.28, 0.16, 0.09, 0.05, 0.04, 0.04, 0.06, 0.15, 0.45, 0.75, 0.92, 1.00, 1.00,
                    0.98, 0.95, 0.92, 0.92, 0.95, 1.00, 1.05, 1.05, 0.95, 0.70, 0.45,
                ];
                W[h]
            } else {
                // Pre-pandemic weekdays: classes keep daytime lighter;
                // evening peak.
                const W: [f64; 24] = [
                    0.25, 0.14, 0.08, 0.05, 0.03, 0.03, 0.05, 0.10, 0.22, 0.30, 0.35, 0.42, 0.50,
                    0.45, 0.42, 0.45, 0.55, 0.70, 0.85, 0.95, 1.00, 0.95, 0.70, 0.45,
                ];
                W[h]
            }
        }
        DiurnalKind::Class => {
            if weekend {
                // Small weekend afternoon bump (§5.1).
                const W: [f64; 24] = [
                    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50,
                    0.50, 0.40, 0.30, 0.20, 0.10, 0.05, 0.02, 0.0, 0.0, 0.0,
                ];
                W[h]
            } else {
                // "Most active from 8am to 6pm on weekdays" (§5.1).
                const W: [f64; 24] = [
                    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.80, 1.00, 1.00, 1.00, 0.85, 1.00,
                    1.00, 1.00, 0.95, 0.80, 0.40, 0.15, 0.05, 0.02, 0.0, 0.0,
                ];
                W[h]
            }
        }
        DiurnalKind::Gaming => {
            const W: [f64; 24] = [
                0.45, 0.30, 0.18, 0.10, 0.05, 0.03, 0.03, 0.05, 0.10, 0.18, 0.30, 0.42, 0.50, 0.55,
                0.60, 0.65, 0.72, 0.80, 0.90, 1.00, 1.00, 0.95, 0.80, 0.60,
            ];
            W[h]
        }
        DiurnalKind::Flat => 1.0,
    }
}

/// Diurnal profile families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiurnalKind {
    /// Web browsing, social media, streaming.
    Leisure,
    /// Zoom classes.
    Class,
    /// Steam and console play.
    Gaming,
    /// Always-on device chatter.
    Flat,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leisure_multiplier_shapes() {
        // Break: international >> domestic.
        let break_day = Day(52);
        assert!(
            leisure_multiplier(true, SubPop::International, break_day)
                > leisure_multiplier(true, SubPop::Domestic, break_day) + 0.4
        );
        // April peak above May floor for both.
        for sp in [SubPop::Domestic, SubPop::International] {
            let apr = leisure_multiplier(true, sp, Day(63));
            let may_end = leisure_multiplier(true, sp, Day(120));
            assert!(apr > may_end, "{sp:?}: {apr} vs {may_end}");
            // International stays elevated relative to domestic all term.
        }
        assert!(
            leisure_multiplier(true, SubPop::International, Day(110))
                > leisure_multiplier(true, SubPop::Domestic, Day(110))
        );
        // February is baseline for the pandemic run.
        assert_eq!(leisure_multiplier(true, SubPop::Domestic, Day(5)), 1.0);
        // The counterfactual drifts gently upward through the term.
        let f = |d| leisure_multiplier(false, SubPop::Domestic, Day(d));
        assert!(f(0) >= 1.0 && f(0) < 1.01);
        assert!(f(120) > f(0) && f(120) <= 1.06);
    }

    #[test]
    fn leisure_multiplier_is_continuousish_across_phase_edges() {
        // No wild jumps (> 0.6) between consecutive days.
        for sp in [SubPop::Domestic, SubPop::International] {
            for d in 0..120u16 {
                let a = leisure_multiplier(true, sp, Day(d));
                let b = leisure_multiplier(true, sp, Day(d + 1));
                assert!((a - b).abs() < 0.8, "jump at day {d}: {a} -> {b}");
            }
        }
    }

    #[test]
    fn zoom_hours_shape() {
        // Online term weekday >> everything earlier.
        assert!(zoom_hours(true, Day(75)) > 2.0); // an April weekday? Day 75 = Apr 16 (Thu)
        assert!(zoom_hours(true, Day(5)) < 0.1);
        // Weekends small but nonzero during term.
        let sat = Day(77); // 2020-04-18 is a Saturday
        assert_eq!(sat.weekday(), Weekday::Sat);
        assert!(zoom_hours(true, sat) < 0.5);
        assert!(zoom_hours(true, sat) > 0.0);
        // Break is quiet.
        assert!(zoom_hours(true, Day(53)) < 0.2);
        // Counterfactual has no ramp.
        assert!(zoom_hours(false, Day(75)) < 0.1);
    }

    #[test]
    fn social_tables_match_figure6_trends() {
        use Month::*;
        // 6a: domestic FB declines by May; international rises from Feb.
        let dom = |m| social_monthly_hours(SocialApp::Facebook, SubPop::Domestic, false, m);
        let intl = |m| social_monthly_hours(SocialApp::Facebook, SubPop::International, false, m);
        assert!(dom(May) < dom(Feb));
        assert!(intl(May) > intl(Feb));
        assert!(dom(Feb) > intl(Feb)); // FB more popular domestically in Feb
        assert!(dom(May) - intl(May) < dom(Feb) - intl(Feb)); // gap narrows

        // 6b: domestic IG May decrease; international May increase.
        let dom = |m| social_monthly_hours(SocialApp::Instagram, SubPop::Domestic, false, m);
        let intl = |m| social_monthly_hours(SocialApp::Instagram, SubPop::International, false, m);
        assert!(dom(May) < dom(Apr));
        assert!(intl(May) > intl(Apr));

        // 6c: domestic TikTok up in March, down in April, back to Feb in
        // May; escalators strictly increasing.
        let dom = |m| social_monthly_hours(SocialApp::TikTok, SubPop::Domestic, false, m);
        assert!(dom(Mar) > dom(Feb));
        assert!(dom(Apr) < dom(Mar));
        assert!(
            dom(May) <= dom(Feb),
            "May should return to (or below) February"
        );
        let esc = |m| social_monthly_hours(SocialApp::TikTok, SubPop::Domestic, true, m);
        assert!(esc(Mar) > esc(Feb) && esc(Apr) > esc(Mar) && esc(May) > esc(Apr));
        // International much less active on TikTok than domestic.
        assert!(
            social_monthly_hours(SocialApp::TikTok, SubPop::International, false, Feb)
                < dom(Feb) / 2.0
        );
    }

    #[test]
    fn tiktok_adoption_grows() {
        use Month::*;
        for sp in [SubPop::Domestic, SubPop::International] {
            let p = |m| social_monthly_active_prob(SocialApp::TikTok, sp, m);
            assert!(p(Feb) < p(Mar) && p(Mar) < p(Apr) && p(Apr) < p(May));
        }
    }

    #[test]
    fn steam_tables_match_figure7() {
        use Month::*;
        // Bytes: March spike for both; May collapse; intl peak > dom peak.
        let dom = |m| steam_month(SubPop::Domestic, m);
        let intl = |m| steam_month(SubPop::International, m);
        assert!(dom(Mar).median_bytes > 3.0 * dom(Feb).median_bytes);
        assert!(dom(May).median_bytes < dom(Mar).median_bytes);
        assert!(intl(Mar).median_bytes > dom(Mar).median_bytes);
        assert!(intl(May).median_bytes < intl(Apr).median_bytes);
        // Connections: domestic declines monotonically; intl spikes in March.
        assert!(dom(Feb).median_conns > dom(Mar).median_conns);
        assert!(dom(Mar).median_conns > dom(Apr).median_conns);
        assert!(dom(Apr).median_conns > dom(May).median_conns);
        assert!(intl(Mar).median_conns > intl(Feb).median_conns);
        assert!(intl(Apr).median_conns < intl(Mar).median_conns);
        // Active-device counts: May is domestic Steam's biggest month.
        assert!(dom(May).active_prob > dom(Apr).active_prob);
    }

    #[test]
    fn switch_multiplier_matches_figure8() {
        // Break >> February.
        assert!(switch_gameplay_multiplier(true, Day(53)) > 2.0);
        // Late-April trough near pre-pandemic.
        let late_apr = switch_gameplay_multiplier(true, Day(88)); // weekday? Apr 29 = Wed
        assert!(late_apr < 1.4, "{late_apr}");
        // Mid/late-May rise again.
        let tue_may = Day(108); // 2020-05-19 Tuesday
        assert_eq!(tue_may.weekday(), Weekday::Tue);
        assert!(
            switch_gameplay_multiplier(true, tue_may) > switch_gameplay_multiplier(true, Day(95))
        );
        // Counterfactual: flat except weekends.
        assert_eq!(switch_gameplay_multiplier(false, tue_may), 1.0);
    }

    #[test]
    fn diurnal_shapes() {
        // Zoom: silent at night, strong 10am weekdays.
        assert_eq!(diurnal_weight(DiurnalKind::Class, true, false, 3), 0.0);
        assert!(diurnal_weight(DiurnalKind::Class, true, false, 10) > 0.9);
        // Post-shutdown weekday leisure rises earlier than pre-pandemic.
        let pre9 = diurnal_weight(DiurnalKind::Leisure, false, false, 9);
        let post9 = diurnal_weight(DiurnalKind::Leisure, true, false, 9);
        assert!(post9 > 2.0 * pre9, "{pre9} vs {post9}");
        // Weekends identical across the study.
        for h in 0..24 {
            assert_eq!(
                diurnal_weight(DiurnalKind::Leisure, false, true, h),
                diurnal_weight(DiurnalKind::Leisure, true, true, h)
            );
        }
        // Flat is flat.
        for h in 0..24 {
            assert_eq!(diurnal_weight(DiurnalKind::Flat, false, false, h), 1.0);
        }
    }

    #[test]
    fn foreign_share_heterogeneity() {
        assert!(foreign_web_share(SubPop::Domestic, 0.5) < 0.1);
        assert!((foreign_web_share(SubPop::International, 0.0) - 0.06).abs() < 1e-12);
        assert!((foreign_web_share(SubPop::International, 1.0) - 0.73).abs() < 1e-12);
        // Bimodal: the assimilated cohort sits at the domestic-like level.
        assert!(foreign_web_share(SubPop::International, 0.17) < 0.1);
        assert!(foreign_web_share(SubPop::International, 0.19) > 0.17);
    }

    #[test]
    fn web_breadth_grows() {
        assert!(web_breadth(Phase::OnlineTerm) > web_breadth(Phase::PreEmergency));
    }
}
