//! Population sharding: build a campus of millions of devices without
//! ever materializing the full device table.
//!
//! [`PopulationPlan`] deterministically partitions the configured
//! population into K independent sub-populations. Each [`Shard`] builds
//! lazily ([`Shard::build`]) and can be dropped as soon as its days are
//! drained, so peak memory is bounded by the largest *shard*, not the
//! campus.
//!
//! ## Why sharding is exact
//!
//! Every resident realizes all of its attributes from a private RNG
//! stream keyed `(seed, Population, student, 0)` and every visitor from
//! `(seed, Population, visitor, 1)` — there is no cross-student
//! randomness. A shard therefore replays exactly the draws of its own
//! contiguous student range, and the union of all shards is
//! *bit-identical* to the monolithic [`Population::build`] (student and
//! device indices stay global; MACs, anonymized ids, and volume factors
//! come out bit-equal). `PopulationPlan::shards(1)` is the compatibility
//! path: one `Full` shard built by the very same code path as
//! `Population::build`.
//!
//! ## Partitioning
//!
//! Shards are contiguous student ranges, device-balanced using a
//! counting pass that replays every student's draws and records a
//! prefix sum of device counts (the realizer is the *same function*
//! used to build, so counts cannot drift from reality). Residents and
//! visitors never share a shard: resident shards come first, then
//! visitor shards, preserving the monolithic emit order. Keeping each
//! shard a contiguous *device* range also keeps the per-day modular IP
//! assignment (`device_ip`) collision-free within a shard as long as a
//! shard spans fewer than the DHCP pool's ~65k addresses —
//! [`PopulationPlan::auto_shards`] enforces a comfortable
//! [`MAX_SHARD_DEVICES`] ceiling.
//!
//! ## Per-shard seeds
//!
//! Each shard carries a derived seed `mix(seed, shard_id)`
//! ([`Shard::seed`]). Population realization deliberately does *not*
//! use it (that would break byte-identity with the monolithic build);
//! it keys shard-scoped auxiliary randomness — fault-injection weather
//! via `FaultingSink::for_shard` — and stamps provenance in manifests.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::config::SimConfig;
use crate::population::{Population, PopulationEnv};
use crate::rng;

/// Largest device span `auto_shards` allows per shard. The per-day IP
/// assignment walks a /16 pool (65534 usable hosts) with a modular
/// stride, so any contiguous device range below the pool size maps to
/// distinct per-day IPs; 48k leaves slack for the visitor MAC offset
/// and keeps shards comfortably under the pool.
pub const MAX_SHARD_DEVICES: u64 = 49_152;

/// Per-device working-set estimate used to derive a shard count from a
/// memory budget, calibrated from `results/BENCH_memory.json`
/// (collector dominates: two dense 121-day volume rows ≈ 2 KiB, plus
/// profiles/midpoints/site sets and the device table itself). Biased
/// high so a budget is a ceiling, not a target.
pub const BYTES_PER_DEVICE_EST: u64 = 4096;

/// Fixed per-run overhead reserved out of the budget before dividing
/// (service directory, stage scratch, figure buffers).
const SHARD_BASE_BYTES: u64 = 8 << 20;

/// How a shard maps onto the global population.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardKind {
    /// The whole campus in one shard (the `shards(1)` compatibility
    /// path — same code path as [`Population::build`]).
    Full,
    /// A contiguous range of resident students.
    Residents {
        students: Range<u32>,
        device_base: u32,
    },
    /// A contiguous range of visitors.
    Visitors {
        visitors: Range<u32>,
        student_base: u32,
        device_base: u32,
    },
}

/// The partition coordinates of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `0..shards`.
    pub shard_id: u32,
    /// Total shard count K of the plan that produced this spec.
    pub shards: u32,
    /// Derived per-shard seed `mix(cfg.seed, shard_id)` for
    /// shard-scoped auxiliary randomness and provenance.
    pub seed: u64,
    kind: ShardKind,
}

/// Device-count prefix sums from the counting pass: `resident[s]` =
/// devices owned by residents `0..s`, likewise for visitors.
struct Counts {
    resident: Vec<u64>,
    visitor: Vec<u64>,
}

impl Counts {
    fn resident_devices(&self) -> u64 {
        *self.resident.last().unwrap_or(&0)
    }

    fn visitor_devices(&self) -> u64 {
        *self.visitor.last().unwrap_or(&0)
    }

    fn total_devices(&self) -> u64 {
        self.resident_devices() + self.visitor_devices()
    }
}

struct PlanInner {
    env: PopulationEnv,
    seed: u64,
    counts: OnceLock<Counts>,
}

impl PlanInner {
    /// The counting pass: replay every student's draws through the same
    /// realizer used to build, keeping only device counts. Runs once
    /// per plan, only when a multi-shard partition (or a device total)
    /// is actually requested.
    fn counts(&self) -> &Counts {
        self.counts.get_or_init(|| {
            let n = self.env.n_residents();
            let mut resident = Vec::with_capacity(n + 1);
            resident.push(0u64);
            let mut acc = 0u64;
            for s in 0..n {
                let (_, devs) = self.env.realize_resident(s, 0);
                acc += devs.len() as u64;
                resident.push(acc);
            }
            let m = self.env.n_visitors();
            let mut visitor = Vec::with_capacity(m + 1);
            visitor.push(0u64);
            let mut acc = 0u64;
            for v in 0..m {
                let (_, devs) = self.env.realize_visitor(v, 0, 0);
                acc += devs.len() as u64;
                visitor.push(acc);
            }
            Counts { resident, visitor }
        })
    }
}

/// A deterministic partition of the configured population into K
/// independently buildable shards. Cheap to create; the counting pass
/// runs lazily on first multi-shard use. Clone-friendly (`Arc` inside)
/// and shareable across worker threads.
#[derive(Clone)]
pub struct PopulationPlan {
    inner: Arc<PlanInner>,
}

impl PopulationPlan {
    /// Plan the population of `cfg`. Resolves the scenario and OUI
    /// pools once; does not realize any student yet.
    pub fn new(cfg: &SimConfig) -> PopulationPlan {
        PopulationPlan {
            inner: Arc::new(PlanInner {
                env: PopulationEnv::new(cfg),
                seed: cfg.seed,
                counts: OnceLock::new(),
            }),
        }
    }

    /// Number of students (residents + visitors) the plan covers.
    pub fn total_students(&self) -> u64 {
        (self.inner.env.n_residents() + self.inner.env.n_visitors()) as u64
    }

    /// Exact total device count, from the counting pass.
    pub fn total_devices(&self) -> u64 {
        self.inner.counts().total_devices()
    }

    /// Partition into exactly `k` shards (`k = 1` is the compatibility
    /// path: one `Full` shard, bit-identical to [`Population::build`]
    /// and requiring no counting pass). For `k ≥ 2`, shards are
    /// device-balanced contiguous student ranges — residents first,
    /// then visitors — and may be empty when `k` exceeds the student
    /// count. Explicit `k` is taken as given; use
    /// [`auto_shards`](Self::auto_shards) to derive a safe count from
    /// a memory budget.
    pub fn shards(&self, k: u32) -> Vec<Shard> {
        let k = k.max(1);
        if k == 1 {
            return vec![self.shard(0, 1, ShardKind::Full)];
        }
        let counts = self.inner.counts();
        let res_dev = counts.resident_devices();
        let vis_dev = counts.visitor_devices();
        let total = res_dev + vis_dev;
        // Split K between the resident and visitor segments in
        // proportion to device mass, keeping at least one shard per
        // non-empty segment.
        let mut k_res = (k as u64 * res_dev + total / 2)
            .checked_div(total)
            .map_or(k, |v| v as u32);
        k_res = k_res.clamp(u32::from(res_dev > 0 || vis_dev == 0), k);
        if vis_dev > 0 {
            k_res = k_res.min(k - 1);
        }
        let k_vis = k - k_res;
        let mut out = Vec::with_capacity(k as usize);
        let res_bounds = boundaries(&counts.resident, k_res);
        for i in 0..k_res as usize {
            let students = res_bounds[i] as u32..res_bounds[i + 1] as u32;
            let device_base = counts.resident[res_bounds[i]] as u32;
            out.push(self.shard(
                out.len() as u32,
                k,
                ShardKind::Residents {
                    students,
                    device_base,
                },
            ));
        }
        let n_res = self.inner.env.n_residents() as u32;
        let vis_bounds = boundaries(&counts.visitor, k_vis);
        for i in 0..k_vis as usize {
            let visitors = vis_bounds[i] as u32..vis_bounds[i + 1] as u32;
            let student_base = n_res + visitors.start;
            let device_base = (res_dev + counts.visitor[vis_bounds[i]]) as u32;
            out.push(self.shard(
                out.len() as u32,
                k,
                ShardKind::Visitors {
                    visitors,
                    student_base,
                    device_base,
                },
            ));
        }
        out
    }

    /// Derive a shard count from a memory budget (bytes) and partition.
    /// K is the larger of the memory-derived count
    /// (`devices × BYTES_PER_DEVICE_EST / budget`) and the IP-pool
    /// floor (`devices / MAX_SHARD_DEVICES`), so a generous budget
    /// still cannot produce a shard wider than the DHCP pool.
    pub fn auto_shards(&self, mem_budget_bytes: u64) -> Vec<Shard> {
        let devices = self.total_devices();
        let usable = mem_budget_bytes.saturating_sub(SHARD_BASE_BYTES).max(1);
        let k_mem = devices
            .saturating_mul(BYTES_PER_DEVICE_EST)
            .div_ceil(usable);
        let k_ip = devices.div_ceil(MAX_SHARD_DEVICES);
        // A budget below the fixed base overhead can demand absurdly
        // fine partitions (k_mem explodes as `usable` → 1); past one
        // device per shard, more shards cannot shrink the working set,
        // so the device count caps the answer.
        let k = k_mem
            .max(k_ip)
            .max(1)
            .min(devices.max(1))
            .min(u64::from(u32::MAX)) as u32;
        self.shards(k)
    }

    fn shard(&self, shard_id: u32, shards: u32, kind: ShardKind) -> Shard {
        Shard {
            inner: Arc::clone(&self.inner),
            spec: ShardSpec {
                shard_id,
                shards,
                seed: rng::mix(&[self.inner.seed, u64::from(shard_id)]),
                kind,
            },
        }
    }
}

impl std::fmt::Debug for PopulationPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PopulationPlan")
            .field("students", &self.total_students())
            .finish_non_exhaustive()
    }
}

/// One lazily buildable sub-population. Holds only partition
/// coordinates (plus an `Arc` of the shared plan) until
/// [`build`](Shard::build) is called; the caller owns the returned
/// [`Population`] and drops it when the shard's days are drained.
#[derive(Clone)]
pub struct Shard {
    inner: Arc<PlanInner>,
    spec: ShardSpec,
}

impl Shard {
    /// Shard index in `0..total_shards()`.
    pub fn id(&self) -> u32 {
        self.spec.shard_id
    }

    /// Total shard count K of the owning plan.
    pub fn total_shards(&self) -> u32 {
        self.spec.shards
    }

    /// Derived per-shard seed `mix(cfg.seed, shard_id)`.
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// The partition coordinates.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Exact device count of this shard without building it (from the
    /// counting pass; triggers it for a `Full` shard).
    pub fn expected_devices(&self) -> u64 {
        let counts = self.inner.counts();
        match &self.spec.kind {
            ShardKind::Full => counts.total_devices(),
            ShardKind::Residents { students, .. } => {
                counts.resident[students.end as usize] - counts.resident[students.start as usize]
            }
            ShardKind::Visitors { visitors, .. } => {
                counts.visitor[visitors.end as usize] - counts.visitor[visitors.start as usize]
            }
        }
    }

    /// Number of students in this shard (no counting pass needed).
    pub fn student_count(&self) -> u64 {
        match &self.spec.kind {
            ShardKind::Full => (self.inner.env.n_residents() + self.inner.env.n_visitors()) as u64,
            ShardKind::Residents { students, .. } => u64::from(students.end - students.start),
            ShardKind::Visitors { visitors, .. } => u64::from(visitors.end - visitors.start),
        }
    }

    /// Realize this shard's slice of the population. Bit-identical to
    /// the same slice of the monolithic [`Population::build`].
    pub fn build(&self) -> Population {
        let env = &self.inner.env;
        match &self.spec.kind {
            ShardKind::Full => Population::build_full(env),
            ShardKind::Residents {
                students: range,
                device_base,
            } => {
                let mut students = Vec::with_capacity(range.len());
                let mut devices = Vec::new();
                let mut base = *device_base;
                for s in range.clone() {
                    let (student, devs) = env.realize_resident(s as usize, base);
                    base += devs.len() as u32;
                    students.push(student);
                    devices.extend(devs);
                }
                Population::from_parts(students, devices, range.start, *device_base)
            }
            ShardKind::Visitors {
                visitors: range,
                student_base,
                device_base,
            } => {
                let mut students = Vec::with_capacity(range.len());
                let mut devices = Vec::new();
                let mut base = *device_base;
                for (off, v) in range.clone().enumerate() {
                    let s_index = student_base + off as u32;
                    let (student, devs) = env.realize_visitor(v as usize, s_index, base);
                    base += devs.len() as u32;
                    students.push(student);
                    devices.extend(devs);
                }
                Population::from_parts(students, devices, *student_base, *device_base)
            }
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// Device-balanced split points: `k + 1` indices into the entity axis
/// of a strictly increasing device-count prefix array, such that each
/// `[b[i], b[i+1])` range holds ≈ `total / k` devices. Empty ranges
/// appear only when `k` exceeds the entity count.
fn boundaries(prefix: &[u64], k: u32) -> Vec<usize> {
    let n = prefix.len() - 1;
    if k == 0 {
        return vec![n; 1];
    }
    let total = prefix[n];
    let mut out = Vec::with_capacity(k as usize + 1);
    for i in 0..=u64::from(k) {
        let target = total * i / u64::from(k);
        let b = if i == u64::from(k) {
            n
        } else {
            prefix.partition_point(|&p| p < target).min(n)
        };
        out.push(b);
    }
    // Guard monotonicity under duplicate targets (tiny populations).
    for i in 1..out.len() {
        if out[i] < out[i - 1] {
            out[i] = out[i - 1];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;

    fn small_cfg() -> SimConfig {
        SimConfig {
            scale: 0.05,
            ..Default::default()
        }
    }

    fn assert_same_population(a: &Population, b: &Population) {
        assert_eq!(a.students.len(), b.students.len());
        assert_eq!(a.devices.len(), b.devices.len());
        for (x, y) in a.students.iter().zip(&b.students) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.subpop, y.subpop);
            assert_eq!(x.arrives, y.arrives);
            assert_eq!(x.departs, y.departs);
            assert_eq!(x.returns, y.returns);
            assert_eq!(x.devices, y.devices);
            assert_eq!(x.steam_gamer, y.steam_gamer);
            assert_eq!(x.leisure_factor.to_bits(), y.leisure_factor.to_bits());
            assert_eq!(x.visitor, y.visitor);
        }
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.mac, y.mac);
            assert_eq!(x.id, y.id);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.os, y.os);
            assert_eq!(x.randomized_mac, y.randomized_mac);
            assert_eq!(x.ua_visible, y.ua_visible);
            assert_eq!(x.owner, y.owner);
            assert_eq!(x.volume_factor.to_bits(), y.volume_factor.to_bits());
            assert_eq!(x.acquired, y.acquired);
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_monolithic_build() {
        let cfg = small_cfg();
        let full = Population::build(&cfg);
        let shards = PopulationPlan::new(&cfg).shards(1);
        assert_eq!(shards.len(), 1);
        let p = shards[0].build();
        assert_eq!(p.student_base(), 0);
        assert_eq!(p.device_base(), 0);
        assert_same_population(&full, &p);
    }

    #[test]
    fn shard_union_is_bit_identical_to_monolithic_build() {
        let cfg = small_cfg();
        let full = Population::build(&cfg);
        let plan = PopulationPlan::new(&cfg);
        for k in [2u32, 3, 7, 16] {
            let shards = plan.shards(k);
            assert_eq!(shards.len(), k as usize);
            let mut students = Vec::new();
            let mut devices = Vec::new();
            for shard in &shards {
                let p = shard.build();
                assert_eq!(p.student_base() as usize, students.len());
                assert_eq!(p.device_base() as usize, devices.len());
                assert_eq!(p.devices.len() as u64, shard.expected_devices());
                assert_eq!(p.students.len() as u64, shard.student_count());
                students.extend(p.students);
                devices.extend(p.devices);
            }
            let union = Population::from_parts(students, devices, 0, 0);
            assert_same_population(&full, &union);
        }
    }

    #[test]
    fn shards_are_device_balanced_and_segregate_visitors() {
        let cfg = small_cfg();
        let plan = PopulationPlan::new(&cfg);
        let shards = plan.shards(5);
        let total = plan.total_devices();
        for shard in &shards {
            let p = shard.build();
            // No shard mixes residents and visitors.
            let visitors = p.students.iter().filter(|s| s.visitor).count();
            assert!(visitors == 0 || visitors == p.students.len());
            // Balance: nobody holds more than half again the fair share
            // (+ the largest single inventory, since students are atomic).
            assert!(
                (p.devices.len() as u64) < total / 5 * 3 / 2 + 16,
                "shard {} holds {} of {total} devices",
                shard.id(),
                p.devices.len()
            );
        }
    }

    #[test]
    fn per_shard_seeds_are_derived_and_distinct() {
        let cfg = small_cfg();
        let shards = PopulationPlan::new(&cfg).shards(4);
        let mut seeds: Vec<u64> = shards.iter().map(|s| s.seed()).collect();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.seed(), rng::mix(&[cfg.seed, i as u64]));
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn global_index_accessors_work_on_shard_slices() {
        let cfg = small_cfg();
        let plan = PopulationPlan::new(&cfg);
        for shard in plan.shards(3) {
            let p = shard.build();
            for s in &p.students {
                assert_eq!(p.student(s.index).index, s.index);
            }
            for d in &p.devices {
                assert_eq!(p.device(d.index).index, d.index);
                assert_eq!(p.owner_of(d).index, d.owner);
                // Owner lives in the same shard: presence queries work.
                let _ = p.device_present(d, nettrace::time::Day(0));
            }
        }
    }

    #[test]
    fn more_shards_than_students_yields_empty_shards() {
        let cfg = SimConfig {
            scale: 0.001,
            ..Default::default()
        };
        let full = Population::build(&cfg);
        let plan = PopulationPlan::new(&cfg);
        let shards = plan.shards(64);
        assert_eq!(shards.len(), 64);
        let mut students = Vec::new();
        let mut devices = Vec::new();
        for shard in &shards {
            let p = shard.build();
            students.extend(p.students);
            devices.extend(p.devices);
        }
        let union = Population::from_parts(students, devices, 0, 0);
        assert_same_population(&full, &union);
    }

    #[test]
    fn auto_shards_respects_budget_and_ip_floor() {
        let cfg = small_cfg();
        let plan = PopulationPlan::new(&cfg);
        let devices = plan.total_devices();
        // A huge budget still gives at least one shard.
        assert_eq!(plan.auto_shards(u64::MAX).len(), 1);
        // A tight budget forces more shards.
        let budget = SHARD_BASE_BYTES + devices * BYTES_PER_DEVICE_EST / 4;
        let shards = plan.auto_shards(budget);
        assert!(shards.len() >= 4, "got {} shards", shards.len());
        // Every shard stays under the IP-pool ceiling.
        for s in &shards {
            assert!(s.expected_devices() <= MAX_SHARD_DEVICES);
        }
        // A budget below the fixed base overhead (even one byte) caps
        // at one device per shard instead of exploding toward u32::MAX.
        let floor = plan.auto_shards(1);
        assert_eq!(floor.len() as u64, devices);
    }

    #[test]
    fn counting_pass_matches_built_population() {
        let cfg = small_cfg();
        let plan = PopulationPlan::new(&cfg);
        let full = Population::build(&cfg);
        assert_eq!(plan.total_devices(), full.devices.len() as u64);
        assert_eq!(plan.total_students(), full.students.len() as u64);
    }
}
