//! Deterministic RNG streams and sampling distributions.
//!
//! Every sampling site in the generator derives its RNG from
//! (study seed, stream tag, day, entity), so
//!
//! * the whole trace is reproducible from one seed,
//! * any day can be generated independently of any other (day-parallel
//!   generation is order-independent), and
//! * perturbing one knob does not reshuffle unrelated randomness.
//!
//! `rand` provides uniform sampling; the handful of shaped distributions
//! the workload needs (Poisson, log-normal, exponential) are implemented
//! here to keep the dependency footprint at the whitelisted crates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mix several u64 identifiers into one seed (SplitMix64 finalizer chain).
pub fn mix(parts: &[u64]) -> u64 {
    let mut x: u64 = 0x243f_6a88_85a3_08d3; // pi digits, nothing up the sleeve
    for &p in parts {
        x ^= p;
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

/// Named stream tags, so call sites cannot collide by accident.
#[derive(Debug, Clone, Copy)]
pub enum Stream {
    /// Population construction (device inventories, subpops, departures).
    Population,
    /// Per-device per-day session sampling.
    Sessions,
    /// Flow-level jitter (ports, byte splits, timing).
    Flows,
    /// DNS query timing.
    Dns,
    /// User-Agent sighting sampling.
    UserAgents,
    /// Service directory construction (server IPs per hostname).
    Directory,
    /// Per-device engagement factors.
    Engagement,
    /// Fault-injection decisions (which records a [`crate::fault::FaultProfile`]
    /// corrupts, and how).
    Faults,
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::Population => 1,
            Stream::Sessions => 2,
            Stream::Flows => 3,
            Stream::Dns => 4,
            Stream::UserAgents => 5,
            Stream::Directory => 6,
            Stream::Engagement => 7,
            Stream::Faults => 8,
        }
    }
}

/// An RNG for (seed, stream, and up to two entity coordinates).
pub fn rng_for(seed: u64, stream: Stream, a: u64, b: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix(&[seed, stream.tag(), a, b]))
}

/// A deterministic uniform in [0,1) from identifiers alone — for stable
/// per-entity coin flips that must not consume generator state.
pub fn unit_hash(seed: u64, stream: Stream, a: u64, b: u64) -> f64 {
    (mix(&[seed, stream.tag(), a, b]) >> 11) as f64 / (1u64 << 53) as f64
}

/// Sample a Poisson variate.
///
/// Knuth's product method for small `lambda`; for `lambda > 30` a
/// rounded normal approximation (error is negligible for workload
/// synthesis at that scale).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let n = normal(rng, lambda, lambda.sqrt());
        return n.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerically unreachable; guards against NaN lambda
        }
    }
}

/// Sample a standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample N(mu, sigma).
pub fn normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Sample a log-normal with the given *median* and log-space sigma.
/// (Median parameterization keeps behaviour tables readable: the table
/// value is literally the population median.)
pub fn lognormal_med<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * standard_normal(rng)).exp()
}

/// Sample Exp(mean).
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Deterministic per-entity log-normal factor with median 1.0 (used for
/// stable device-level engagement heterogeneity).
pub fn engagement_factor(seed: u64, a: u64, b: u64, sigma: f64) -> f64 {
    let mut rng = rng_for(seed, Stream::Engagement, a, b);
    (sigma * standard_normal(&mut rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
    }

    #[test]
    fn rng_streams_are_independent() {
        let mut a = rng_for(7, Stream::Sessions, 1, 2);
        let mut b = rng_for(7, Stream::Flows, 1, 2);
        let va: f64 = a.gen();
        let vb: f64 = b.gen();
        assert_ne!(va, vb);
        // Same coordinates reproduce.
        let mut a2 = rng_for(7, Stream::Sessions, 1, 2);
        let va2: f64 = a2.gen();
        assert_eq!(va, va2);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = rng_for(1, Stream::Sessions, 0, 0);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_for(2, Stream::Flows, 0, 0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn lognormal_median_parameterization() {
        let mut rng = rng_for(3, Stream::Engagement, 0, 0);
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal_med(&mut rng, 4.0, 0.8)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 4.0).abs() < 0.15, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_for(4, Stream::Flows, 0, 0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn engagement_factor_is_stable_per_entity() {
        let a = engagement_factor(9, 5, 6, 0.7);
        let b = engagement_factor(9, 5, 6, 0.7);
        let c = engagement_factor(9, 5, 7, 0.7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a > 0.0);
    }

    #[test]
    fn unit_hash_range_and_determinism() {
        for i in 0..1000 {
            let u = unit_hash(1, Stream::Population, i, 0);
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(
            unit_hash(1, Stream::Population, 42, 0),
            unit_hash(1, Stream::Population, 42, 0)
        );
    }
}
