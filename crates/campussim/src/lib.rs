//! # campussim — the synthetic campus workload
//!
//! The paper's trace is proprietary; this crate substitutes a calibrated
//! synthetic campus (see DESIGN.md §1 for the substitution argument).
//! The generator produces the *raw inputs* of the measurement pipeline —
//! IP-keyed flow records, DHCP lease logs, DNS query logs, User-Agent
//! sightings — so every later stage runs the real pipeline code.
//!
//! * [`config`] — scale, seed, pandemic on/off (2019 counterfactual).
//! * [`rng`] — deterministic per-(seed, stream, day, entity) randomness.
//! * [`population`] — students, devices, sub-populations, the March
//!   exodus, lock-down console purchases.
//! * [`domains`] — the synthetic Internet with geolocatable hosting.
//! * [`model`] — the behavioural calibration tables (each constant cites
//!   the claim in the paper it encodes).
//! * [`scenario`] — the timeline/policy/behaviour description: named
//!   phases, departure waves, behaviour curves, loaded from data files;
//!   the paper's timeline is the built-in `paper-2020` scenario.
//! * [`shard`] — deterministic population partitioning for
//!   memory-bounded scale-out: build and drain one shard at a time
//!   without ever materializing the full device table.
//! * [`generator`] — day-by-day materialization into traces.
//! * [`packets`] — optional packet-level rendering of a trace for
//!   validating the flow assembler end to end.
//! * [`fault`] — seeded, deterministic corruption of the raw inputs,
//!   for exercising the pipeline's degradation paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod domains;
pub mod fault;
pub mod generator;
pub mod model;
pub mod packets;
pub mod population;
pub mod rng;
pub mod scenario;
pub mod shard;

pub use batch::{Batcher, DayBatch, DayBatchSink};
pub use config::{ConfigError, SimConfig};
pub use domains::{Service, ServiceDirectory, ServiceId, ServiceKind};
pub use fault::{FaultProfile, FaultStats, FaultingSink};
pub use generator::{CampusSim, DayEvent, DayGenStats, DaySink, DayTrace, UaSighting};
pub use population::{Device, DeviceOs, Population, Student, TrueKind};
pub use scenario::{Scenario, ScenarioError};
pub use shard::{PopulationPlan, Shard, ShardSpec};

/// This crate's version, for provenance manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
