//! Simulation configuration.
//!
//! Defaults are calibrated so that, at `scale = 1.0`, the synthetic campus
//! reproduces the paper's headline population numbers (≈32k peak active
//! devices, ≈6.5k post-shutdown devices, ≈1.1k Switches, 18% measured
//! international share). Counts scale linearly with `scale`; medians and
//! shapes are scale-invariant.

/// Top-level simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Linear population scale. 1.0 ≈ the paper's campus; the default
    /// 0.1 keeps full-study runs interactive.
    pub scale: f64,
    /// Students enrolled in residence halls at scale 1.0.
    pub base_students: usize,
    /// Fraction of the student body that is international (the paper
    /// cites ~25% campus-wide enrollment).
    pub intl_fraction: f64,
    /// Probability a domestic student stays on campus post-shutdown.
    pub domestic_stay_rate: f64,
    /// Probability an international student stays (higher: flights home
    /// were scarce, §4.2).
    pub intl_stay_rate: f64,
    /// When `false`, generate the 2019-style counterfactual: no pandemic
    /// events, no departures, behaviour locked to the pre-emergency
    /// profile all term. Used for the "+53% vs 2019" statistic.
    pub pandemic: bool,
    /// Year-over-year secular traffic growth applied to 2020 baselines
    /// relative to the 2019 counterfactual (≈3%/yr keeps the paper's
    /// 58%-vs-Feb and 53%-vs-2019 statistics distinct).
    pub yoy_growth: f64,
    /// Anonymization key for MAC → DeviceId (§3 privacy controls).
    pub anon_key: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_2020,
            scale: 0.1,
            base_students: 13_000,
            intl_fraction: 0.25,
            domestic_stay_rate: 0.115,
            intl_stay_rate: 0.148,
            pandemic: true,
            yoy_growth: 1.03,
            anon_key: 0x0a0a_0a0a_5a5a_5a5a,
        }
    }
}

impl SimConfig {
    /// Config with a given scale, other knobs default.
    pub fn at_scale(scale: f64) -> Self {
        SimConfig {
            scale,
            ..Default::default()
        }
    }

    /// Number of students after scaling.
    pub fn num_students(&self) -> usize {
        ((self.base_students as f64) * self.scale).round().max(1.0) as usize
    }

    /// The counterfactual (2019) version of this config: same population
    /// and seed, pandemic disabled.
    pub fn counterfactual(&self) -> Self {
        SimConfig {
            pandemic: false,
            yoy_growth: 1.0, // the 2019 network predates a year of growth
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let c = SimConfig::at_scale(0.1);
        assert_eq!(c.num_students(), 1300);
        let c = SimConfig::at_scale(1.0);
        assert_eq!(c.num_students(), 13_000);
        let c = SimConfig::at_scale(0.00001);
        assert_eq!(c.num_students(), 1);
    }

    #[test]
    fn counterfactual_only_flips_pandemic() {
        let c = SimConfig::default();
        let cf = c.counterfactual();
        assert!(!cf.pandemic);
        assert_eq!(cf.yoy_growth, 1.0);
        assert_eq!(cf.seed, c.seed);
        assert_eq!(cf.num_students(), c.num_students());
    }
}
