//! Simulation configuration.
//!
//! Defaults are calibrated so that, at `scale = 1.0`, the synthetic campus
//! reproduces the paper's headline population numbers (≈32k peak active
//! devices, ≈6.5k post-shutdown devices, ≈1.1k Switches, 18% measured
//! international share). Counts scale linearly with `scale`; medians and
//! shapes are scale-invariant.

use std::fmt;

use crate::scenario::{Scenario, ScenarioError};

/// A structurally invalid [`SimConfig`], caught by
/// [`SimConfig::validate`] before a run starts rather than as a NaN or
/// a panic deep inside the generator.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `scale` must be finite and strictly positive.
    BadScale(f64),
    /// A probability-like knob left the `[0, 1]` interval.
    BadFraction {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `yoy_growth` must be finite and strictly positive (it is a
    /// multiplicative factor, not a rate).
    BadGrowth(f64),
    /// The attached scenario failed structural validation.
    Scenario(ScenarioError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadScale(v) => {
                write!(f, "scale must be finite and > 0, got {v}")
            }
            ConfigError::BadFraction { field, value } => {
                write!(f, "{field} must lie in [0, 1], got {value}")
            }
            ConfigError::BadGrowth(v) => {
                write!(f, "yoy_growth must be finite and > 0, got {v}")
            }
            ConfigError::Scenario(e) => write!(f, "scenario: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Top-level simulation configuration.
#[derive(Clone)]
pub struct SimConfig {
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Linear population scale. 1.0 ≈ the paper's campus; the default
    /// 0.1 keeps full-study runs interactive.
    pub scale: f64,
    /// Students enrolled in residence halls at scale 1.0.
    pub base_students: usize,
    /// Fraction of the student body that is international (the paper
    /// cites ~25% campus-wide enrollment).
    pub intl_fraction: f64,
    /// Probability a domestic student stays on campus post-shutdown.
    pub domestic_stay_rate: f64,
    /// Probability an international student stays (higher: flights home
    /// were scarce, §4.2).
    pub intl_stay_rate: f64,
    /// Year-over-year secular traffic growth applied to 2020 baselines
    /// relative to the 2019 counterfactual (≈3%/yr keeps the paper's
    /// 58%-vs-Feb and 53%-vs-2019 statistics distinct).
    pub yoy_growth: f64,
    /// Anonymization key for MAC → DeviceId (§3 privacy controls).
    pub anon_key: u64,
    /// The timeline/policy/behaviour scenario driving the model layer.
    /// Defaults to the built-in `paper-2020`. For the 2019-style
    /// counterfactual twin of a config, use
    /// [`Scenario::counterfactual_of`].
    pub scenario: Scenario,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_2020,
            scale: 0.1,
            base_students: 13_000,
            intl_fraction: 0.25,
            domestic_stay_rate: 0.115,
            intl_stay_rate: 0.148,
            yoy_growth: 1.03,
            anon_key: 0x0a0a_0a0a_5a5a_5a5a,
            scenario: Scenario::default(),
        }
    }
}

/// Matches the pre-scenario-engine `#[derive(Debug)]` output
/// byte-for-byte for configs running the stock paper scenario, so the
/// manifest `config_hash` (an FNV-1a over `format!("{cfg:?}")`) is
/// stable across both the scenario-engine introduction and the removal
/// of the legacy `pandemic` field: the printed `pandemic` flag is now
/// *derived* from the scenario (`true` iff it has pandemic-era events).
/// Non-default scenarios append their name and content hash, giving
/// distinct hashes per scenario cell.
impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("SimConfig");
        s.field("seed", &self.seed)
            .field("scale", &self.scale)
            .field("base_students", &self.base_students)
            .field("intl_fraction", &self.intl_fraction)
            .field("domestic_stay_rate", &self.domestic_stay_rate)
            .field("intl_stay_rate", &self.intl_stay_rate)
            .field("pandemic", &!self.scenario.is_baseline())
            .field("yoy_growth", &self.yoy_growth)
            .field("anon_key", &self.anon_key);
        if !self.scenario.is_paper_default() {
            s.field("scenario", &self.scenario.name).field(
                "scenario_hash",
                &format_args!("{:016x}", self.scenario.content_hash()),
            );
        }
        s.finish()
    }
}

impl SimConfig {
    /// Config with a given scale, other knobs default.
    pub fn at_scale(scale: f64) -> Self {
        SimConfig {
            scale,
            ..Default::default()
        }
    }

    /// Number of students after scaling.
    pub fn num_students(&self) -> usize {
        ((self.base_students as f64) * self.scale).round().max(1.0) as usize
    }

    /// Check every knob for structural validity. The study runner calls
    /// this before building a population, so a bad config is one typed
    /// error instead of a panic (or, worse, a silently absurd campus).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(ConfigError::BadScale(self.scale));
        }
        for (field, value) in [
            ("intl_fraction", self.intl_fraction),
            ("domestic_stay_rate", self.domestic_stay_rate),
            ("intl_stay_rate", self.intl_stay_rate),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::BadFraction { field, value });
            }
        }
        if !self.yoy_growth.is_finite() || self.yoy_growth <= 0.0 {
            return Err(ConfigError::BadGrowth(self.yoy_growth));
        }
        self.scenario.validate().map_err(ConfigError::Scenario)?;
        Ok(())
    }

    /// The scenario this config runs. Kept as the single resolution
    /// point the generator and population code call (historically this
    /// interpreted the legacy `pandemic` boolean; today the scenario
    /// field is authoritative).
    pub fn resolved_scenario(&self) -> Scenario {
        self.scenario.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let c = SimConfig::at_scale(0.1);
        assert_eq!(c.num_students(), 1300);
        let c = SimConfig::at_scale(1.0);
        assert_eq!(c.num_students(), 13_000);
        let c = SimConfig::at_scale(0.00001);
        assert_eq!(c.num_students(), 1);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_nonsense() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
        assert_eq!(
            Scenario::counterfactual_of(&SimConfig::default()).validate(),
            Ok(())
        );
        let bad = SimConfig {
            scale: 0.0,
            ..Default::default()
        };
        assert!(matches!(bad.validate(), Err(ConfigError::BadScale(_))));
        let bad = SimConfig {
            scale: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(bad.validate(), Err(ConfigError::BadScale(_))));
        let bad = SimConfig {
            intl_fraction: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::BadFraction {
                field: "intl_fraction",
                ..
            })
        ));
        let bad = SimConfig {
            yoy_growth: -1.0,
            ..Default::default()
        };
        assert!(matches!(bad.validate(), Err(ConfigError::BadGrowth(_))));
        // Errors render for operators.
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("yoy_growth"));
    }

    #[test]
    fn counterfactual_of_swaps_in_the_baseline_scenario() {
        let c = SimConfig::default();
        let cf = Scenario::counterfactual_of(&c);
        assert_eq!(cf.scenario.name, "baseline-2019");
        assert!(cf.scenario.is_baseline());
        assert_eq!(cf.yoy_growth, 1.0);
        assert_eq!(cf.seed, c.seed);
        assert_eq!(cf.num_students(), c.num_students());
        // The twin advertises itself in Debug (and thus the config hash).
        let dbg = format!("{cf:?}");
        assert!(dbg.contains("pandemic: false"));
        assert!(dbg.contains("scenario: \"baseline-2019\""));
    }

    #[test]
    fn resolved_scenario_is_the_attached_scenario() {
        let c = SimConfig::default();
        assert_eq!(c.resolved_scenario().name, "paper-2020");
        let cf = Scenario::counterfactual_of(&c);
        assert_eq!(cf.resolved_scenario().name, "baseline-2019");
    }

    #[test]
    fn debug_output_matches_legacy_derive_for_paper_scenario() {
        // The manifest config hash is FNV-1a over this string; it must
        // not move for stock-paper runs when the scenario field rides
        // along (or when the legacy boolean field is gone, as now).
        let c = SimConfig::default();
        let dbg = format!("{c:?}");
        assert_eq!(
            dbg,
            "SimConfig { seed: 1592598560, scale: 0.1, base_students: 13000, \
             intl_fraction: 0.25, domestic_stay_rate: 0.115, intl_stay_rate: 0.148, \
             pandemic: true, yoy_growth: 1.03, anon_key: 723401729728207450 }"
        );
        assert!(!dbg.contains("scenario"));
        // A non-default scenario shows up (and changes the hash).
        let mut alt = SimConfig::default();
        alt.scenario = Scenario::builtin("favale-elearning").unwrap();
        let alt_dbg = format!("{alt:?}");
        assert!(alt_dbg.contains("scenario: \"favale-elearning\""));
        assert!(alt_dbg.contains("scenario_hash: "));
    }
}
