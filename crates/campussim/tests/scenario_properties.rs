//! Property tests for the scenario layer: canonical serialization is a
//! parse fixpoint, parsing never panics on arbitrary input, multiplier
//! curves stay finite and positive over the whole study window, and
//! the content hash is formatting-invariant.

use campussim::Scenario;
use geoloc::SubPop;
use nettrace::time::Day;
use proptest::prelude::*;

proptest! {
    /// Any built-in scenario perturbed through serialize → parse →
    /// serialize is a fixpoint from the first serialization on.
    #[test]
    fn builtin_round_trip_is_a_fixpoint(idx in 0usize..4) {
        let scenario = &Scenario::builtins()[idx];
        let once = scenario.to_toml();
        let reparsed = Scenario::parse(&once).expect("canonical TOML reparses");
        prop_assert_eq!(&once, &reparsed.to_toml());
        prop_assert_eq!(scenario.content_hash(), reparsed.content_hash());
    }

    /// The strict parser rejects or accepts arbitrary input without
    /// panicking, and whatever it accepts validates.
    #[test]
    fn parser_never_panics(input in "\\PC{0,300}") {
        if let Ok(scenario) = Scenario::parse(&input) {
            prop_assert!(scenario.validate().is_ok());
        }
    }

    /// Behavior multipliers are finite and positive for every day of
    /// the study window, for every built-in and both subpopulations.
    #[test]
    fn multipliers_stay_finite_and_positive(idx in 0usize..4, day in 0u16..121) {
        let scenario = &Scenario::builtins()[idx];
        let day = Day(day);
        for pop in [SubPop::Domestic, SubPop::International] {
            let leisure = scenario.leisure_multiplier(pop, day);
            prop_assert!(leisure.is_finite() && leisure > 0.0);
        }
        let zoom = scenario.zoom_hours(day);
        let switch = scenario.switch_multiplier(day);
        prop_assert!(zoom.is_finite() && zoom >= 0.0);
        prop_assert!(switch.is_finite() && switch > 0.0);
        prop_assert!(scenario.web_breadth(day) > 0);
    }

    /// Reformatting a scenario file (comments, blank lines, spacing)
    /// does not change its content hash.
    #[test]
    fn content_hash_ignores_formatting(idx in 0usize..4, pad in 0usize..5) {
        let scenario = &Scenario::builtins()[idx];
        let toml = scenario.to_toml();
        let noisy: String = toml
            .lines()
            .map(|l| format!("{}{l}\n# trailing comment\n", "\n".repeat(pad)))
            .collect();
        let reparsed = Scenario::parse(&noisy).expect("noisy TOML still parses");
        prop_assert_eq!(scenario.content_hash(), reparsed.content_hash());
    }
}
