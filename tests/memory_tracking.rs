//! End-to-end memory observability: with the tracking allocator
//! registered and `track_memory(true)`, a run lands `mem.*` counters
//! and gauges whose accounting identities close at every layer
//! (run ≥ day ≥ summed stages) and a populated manifest `memory`
//! section. With tracking off — even while the global tracker is
//! enabled by a concurrent tracked run in the same process — the run
//! carries no `mem.*` keys and its results are identical to a tracked
//! run's, because tracking is observation-only.

use campussim::SimConfig;
use lockdown_obs::TrackingAlloc;
use locked_in_lockdown::prelude::*;

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

fn tiny() -> SimConfig {
    SimConfig {
        scale: 0.02,
        ..Default::default()
    }
}

#[test]
fn tracked_run_closes_accounting_identities() {
    let run = Study::builder(tiny())
        .threads(2)
        .track_memory(true)
        .run()
        .expect("tracked run");
    let study = run.study;
    let m = study.metrics();

    // Run-level: the peak is a high-water mark over live bytes, so it
    // bounds the live gauge sampled at finalize.
    let peak = m.gauge("mem.peak_bytes");
    let live = m.gauge("mem.live_bytes");
    assert!(peak > 0, "no peak recorded");
    assert!(peak >= live, "peak {peak} < live {live}");
    let allocs = m.counter("mem.allocs");
    let alloc_bytes = m.counter("mem.alloc_bytes");
    assert!(
        allocs > 0 && alloc_bytes > 0,
        "{allocs} allocs, {alloc_bytes} B"
    );

    // Day-level scopes only cover pipeline work, a subset of the run.
    let day_alloc_bytes = m.counter("mem.day.alloc_bytes");
    assert!(day_alloc_bytes > 0, "day scopes recorded nothing");
    assert!(day_alloc_bytes <= alloc_bytes);
    assert!(m.counter("mem.day.allocs") <= allocs);

    // Stage-level scopes nest inside day scopes, so their sums are
    // bounded by the day totals and every stage peak by the run peak.
    let stage = |s: &str, what: &str| format!("mem.stage.{s}.{what}");
    let stages = ["normalize", "resolver", "collect"];
    let stage_alloc_bytes: u64 = stages
        .iter()
        .map(|s| m.counter(&stage(s, "alloc_bytes")))
        .sum();
    let stage_allocs: u64 = stages.iter().map(|s| m.counter(&stage(s, "allocs"))).sum();
    assert!(stage_alloc_bytes > 0, "stage scopes recorded nothing");
    assert!(stage_alloc_bytes <= day_alloc_bytes);
    assert!(stage_allocs <= m.counter("mem.day.allocs"));
    for s in stages {
        assert!(
            m.gauge(&stage(s, "peak_net_bytes")) <= peak,
            "stage {s} peak exceeds the run peak"
        );
    }

    // The manifest carries the same numbers, and the text report
    // surfaces the headline line.
    let manifest = report::run_manifest(&study, 2, None);
    let mem = manifest.memory.expect("tracked manifest memory section");
    assert_eq!(mem.peak_bytes, peak);
    assert_eq!(mem.allocs, allocs);
    assert!(mem.allocs_per_flow > 0.0);
    assert_eq!(mem.per_stage.len(), stages.len());
    let manifest_stage_bytes: u64 = mem.per_stage.values().map(|s| s.alloc_bytes).sum();
    assert_eq!(manifest_stage_bytes, stage_alloc_bytes);
    assert!(report::metrics_report(&study).contains("-- Memory: peak"));
}

#[test]
fn tracking_off_is_observationally_inert() {
    // A tracked run first: in this process the global tracker may now
    // be enabled, which is exactly the pollution the explicit
    // `track_memory` gate must shrug off.
    let tracked = Study::builder(tiny())
        .threads(1)
        .track_memory(true)
        .run()
        .expect("tracked run");
    let untracked = Study::builder(tiny()).threads(1).run().expect("untracked");

    // No mem.* keys leak into the untracked run's metrics or manifest.
    let m = untracked.study.metrics();
    assert!(
        m.counters.keys().all(|k| !k.starts_with("mem.")),
        "mem.* counters leaked into an untracked run"
    );
    assert!(
        m.gauges.keys().all(|k| !k.starts_with("mem.")),
        "mem.* gauges leaked into an untracked run"
    );
    let manifest = report::run_manifest(&untracked.study, 1, None);
    assert!(manifest.memory.is_none());
    assert!(!report::metrics_report(&untracked.study).contains("-- Memory:"));

    // Tracking is observation-only: results and provenance agree with
    // the tracked run at the same seed.
    let a = tracked.study;
    let b = untracked.study;
    assert_eq!(a.headline(), b.headline());
    assert_eq!(a.norm_stats, b.norm_stats);
    assert_eq!(
        a.metrics().counter("pipeline.flows_collected"),
        b.metrics().counter("pipeline.flows_collected")
    );
    let ma = report::run_manifest(&a, 1, None);
    assert_eq!(ma.config_hash_hex, manifest.config_hash_hex);
}
