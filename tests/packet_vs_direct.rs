//! The substitution-validation test from DESIGN.md §1: the full study
//! consumes generator-synthesized flow records directly; this test proves
//! the packet-level route (render flows → Ethernet frames → Zeek-style
//! assembler) reproduces the same flows, so the shortcut is
//! behaviour-preserving.

use campussim::packets;
use campussim::{CampusSim, SimConfig};
use nettrace::assembler::FlowAssembler;
use nettrace::time::Day;
use std::collections::HashMap;
use std::net::Ipv4Addr;

#[test]
fn packet_roundtrip_reproduces_direct_flows() {
    let sim = CampusSim::new(SimConfig::at_scale(0.002)); // ~26 students
    let day = Day(25);
    let mut trace = sim.day_trace(day);
    // Render only sub-2MB flows: rendering synthesizes real payload
    // bytes, and a day's heavy tail (game downloads) would occupy
    // gigabytes without changing what the test proves.
    trace.flows.retain(|f| f.total_bytes() < 2_000_000);
    assert!(trace.flows.len() > 100, "need a meaningful flow count");

    let mac_by_ip: HashMap<Ipv4Addr, nettrace::MacAddr> = sim
        .population()
        .devices
        .iter()
        .map(|d| (sim.device_ip(d.index, day), d.mac))
        .collect();

    let mut frames = Vec::new();
    for f in &trace.flows {
        frames.extend(packets::render_flow(f, mac_by_ip[&f.orig]));
    }
    frames.sort_by_key(|(ts, _)| *ts);

    let mut asm = FlowAssembler::with_defaults();
    for (ts, frame) in &frames {
        if let Some(meta) = nettrace::packet::parse_frame(*ts, frame).expect("frame parses") {
            asm.push(&meta);
        }
    }
    let extracted = asm.flush();

    // Aggregate per 5-tuple: the assembler may split a very long flow at
    // an idle timeout, so totals per key are the invariant.
    let totals = |flows: &[nettrace::FlowRecord]| {
        let mut m: HashMap<_, (u64, u64)> = HashMap::new();
        for f in flows {
            let e = m.entry(f.key()).or_insert((0, 0));
            e.0 += f.orig_bytes;
            e.1 += f.resp_bytes;
        }
        m
    };
    let want = totals(&trace.flows);
    let got = totals(&extracted);

    let mut exact = 0usize;
    for (k, v) in &want {
        match got.get(k) {
            Some(g) if g == v => exact += 1,
            Some(g) => panic!("byte mismatch for {k:?}: want {v:?}, got {g:?}"),
            None => panic!("flow key {k:?} lost in packet path"),
        }
    }
    assert_eq!(exact, want.len());
    // No phantom flows either.
    assert_eq!(got.len(), want.len());
}

#[test]
fn pcap_file_roundtrip_preserves_packet_stream() {
    use nettrace::pcap;
    let sim = CampusSim::new(SimConfig::at_scale(0.001));
    let day = Day(3);
    let trace = sim.day_trace(day);
    let mac = nettrace::MacAddr::new(0, 1, 2, 3, 4, 5);
    let mut frames = Vec::new();
    for f in trace.flows.iter().take(50) {
        frames.extend(packets::render_flow(f, mac));
    }
    let mut w = pcap::Writer::new(Vec::new()).unwrap();
    for (ts, frame) in &frames {
        w.write(*ts, frame).unwrap();
    }
    let buf = w.finish().unwrap();
    let got: Vec<_> = pcap::Reader::new(&buf[..])
        .unwrap()
        .records()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(got.len(), frames.len());
    for (orig, rec) in frames.iter().zip(&got) {
        assert_eq!(orig.0, rec.ts);
        assert_eq!(orig.1, rec.frame);
    }
}
