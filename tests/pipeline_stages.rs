//! Cross-crate pipeline-stage tests: the text log codecs round-trip the
//! generator's output, and the pipeline recovers generator ground truth
//! through the real DHCP/DNS stages.

use campussim::{CampusSim, SimConfig};
use dnslog::DomainTable;
use nettrace::time::Day;
use nettrace::DeviceId;
use std::collections::HashSet;

fn tiny_sim() -> CampusSim {
    CampusSim::new(SimConfig::at_scale(0.005))
}

#[test]
fn dhcp_log_text_roundtrip_preserves_normalization() {
    let sim = tiny_sim();
    let day = Day(12);
    let trace = sim.day_trace(day);

    // Serialize the lease log to text and parse it back — the pipeline
    // must behave identically on the parsed copy.
    let text = dhcplog::lease::write_log(&trace.leases);
    let parsed = dhcplog::lease::parse_log(&text).expect("log parses");
    assert_eq!(parsed, trace.leases);

    let idx_direct = dhcplog::LeaseIndex::build(&trace.leases, dhcplog::DEFAULT_MAX_LEASE_SECS);
    let idx_text = dhcplog::LeaseIndex::build(&parsed, dhcplog::DEFAULT_MAX_LEASE_SECS);
    for f in &trace.flows {
        assert_eq!(
            idx_direct.lookup(f.orig, f.ts),
            idx_text.lookup(f.orig, f.ts)
        );
    }
}

#[test]
fn dns_log_text_roundtrip_preserves_labels() {
    let sim = tiny_sim();
    let day = Day(12);
    let trace = sim.day_trace(day);

    let text = dnslog::query::write_log(&trace.dns, sim.directory().table());
    let mut table2 = DomainTable::new();
    let parsed = dnslog::query::parse_log(&text, &mut table2).expect("log parses");
    assert_eq!(parsed.len(), trace.dns.len());

    let mut resolver_a = dnslog::ResolverMap::new();
    for q in &trace.dns {
        resolver_a.record(q);
    }
    let mut resolver_b = dnslog::ResolverMap::new();
    for q in &parsed {
        resolver_b.record(q);
    }
    // Same IP→name answer for every flow (names compared as strings:
    // the two tables intern in different orders).
    for f in trace.flows.iter().take(500) {
        let a = resolver_a
            .lookup(f.resp, f.ts)
            .map(|d| sim.directory().table().name(d).as_str().to_owned());
        let b = resolver_b
            .lookup(f.resp, f.ts)
            .map(|d| table2.name(d).as_str().to_owned());
        assert_eq!(a, b, "label mismatch for {}", f.resp);
    }
}

#[test]
fn pipeline_attributes_all_flows_across_many_days() {
    let sim = tiny_sim();
    let ctx = analysis::collect::PipelineCtx::study();
    let mut collector = analysis::collect::StudyCollector::new();
    let mut total_flows = 0usize;
    for d in [0u16, 30, 47, 50, 75, 120] {
        let day = Day(d);
        let trace = sim.day_trace(day);
        total_flows += trace.flows.len();
        let opts = lockdown_core::PipelineOptions::new(
            &ctx,
            sim.directory().table(),
            day,
            sim.config().anon_key,
        );
        let stats = lockdown_core::process_day(opts, &mut collector, &trace);
        assert_eq!(stats.unattributed, 0, "day {d}");
        assert_eq!(stats.foreign, 0, "day {d}");
    }
    assert!(total_flows > 1000);

    // Every attributed device is a real ground-truth device.
    let truth: HashSet<DeviceId> = sim.population().devices.iter().map(|d| d.id).collect();
    for dev in collector.volume.devices() {
        assert!(truth.contains(&dev));
    }
}

#[test]
fn labeling_flows_resolves_via_dns_not_wishes() {
    // Devices contact only IPs they actually resolved that day, so the
    // resolver must label (nearly) all flows; unlabeled flows can only be
    // those matched by IP-range signatures (none in the generator's DNS
    // universe).
    let sim = tiny_sim();
    let day = Day(40);
    let trace = sim.day_trace(day);
    let mut resolver = dnslog::ResolverMap::new();
    for q in &trace.dns {
        resolver.record(q);
    }
    let leases = dhcplog::LeaseIndex::build(&trace.leases, dhcplog::DEFAULT_MAX_LEASE_SECS);
    let mut norm = dhcplog::Normalizer::new(
        &leases,
        nettrace::ip::campus::residential_pool(),
        sim.config().anon_key,
    );
    let mut labeled = 0usize;
    let mut total = 0usize;
    for f in &trace.flows {
        let df = norm.normalize(f).expect("attributable");
        total += 1;
        if resolver.label(df).domain.is_some() {
            labeled += 1;
        }
    }
    // Devices connect to addresses they resolved, so every flow labels.
    assert_eq!(labeled, total, "only {labeled}/{total} flows labeled");
}

#[test]
fn ground_truth_device_kinds_survive_the_pipeline() {
    // Switch detection through the full pipeline matches the generator's
    // console inventory (for consoles present long enough to be seen).
    let sim = tiny_sim();
    let ctx = analysis::collect::PipelineCtx::study();
    let mut collector = analysis::collect::StudyCollector::new();
    for d in 0..21u16 {
        let day = Day(d);
        let trace = sim.day_trace(day);
        let opts = lockdown_core::PipelineOptions::new(
            &ctx,
            sim.directory().table(),
            day,
            sim.config().anon_key,
        );
        lockdown_core::process_day(opts, &mut collector, &trace);
    }
    let detected: HashSet<DeviceId> = collector.switch_detect.switches().into_iter().collect();
    let true_switches: HashSet<DeviceId> = sim
        .population()
        .devices
        .iter()
        .filter(|d| d.kind == campussim::TrueKind::Switch && d.acquired.is_none())
        .map(|d| d.id)
        .collect();
    // Every true Switch active in the window is detected, and nothing
    // else is (Switch traffic is ~100% Nintendo, nothing else comes
    // close to 50%).
    for dev in &true_switches {
        if collector.volume.active_day_count(*dev) > 0 {
            assert!(detected.contains(dev), "missed switch {dev}");
        }
    }
    for dev in &detected {
        assert!(true_switches.contains(dev), "false switch {dev}");
    }
}

#[test]
fn conn_log_roundtrip_preserves_analysis_inputs() {
    // Serialize a generated day to Zeek conn.log text, parse it back, and
    // verify the pipeline sees identical flows — proving interop with the
    // production pipeline's native format.
    let sim = tiny_sim();
    let day = Day(18);
    let trace = sim.day_trace(day);
    let text = nettrace::zeek::write_conn_log(&trace.flows);
    let parsed = nettrace::zeek::parse_conn_log(&text).expect("conn.log parses");
    assert_eq!(parsed, trace.flows);
}
