//! The `StudyBuilder` API: run-to-run determinism across thread
//! counts, the run-level metrics it exposes, and the typed-error
//! surface of `run()`.
//!
//! The builder is the only entry point to a run. These tests hold
//! repeated invocations against each other (bitwise-identical
//! `HeadlineStats`) and sanity-check that the observability layer's
//! numbers agree with what the pipeline itself reports.

use campussim::SimConfig;
use lockdown_obs::{trace, CountingObserver, SpanRecorder};
use locked_in_lockdown::prelude::*;
use std::sync::Arc;

fn tiny() -> SimConfig {
    SimConfig {
        scale: 0.01,
        ..Default::default()
    }
}

#[test]
fn builder_runs_are_deterministic_across_thread_counts() {
    let a = Study::builder(tiny())
        .threads(4)
        .run()
        .unwrap()
        .into_study();
    let b = Study::builder(tiny())
        .threads(1)
        .run()
        .unwrap()
        .into_study();
    assert_eq!(a.norm_stats, b.norm_stats);
    assert_eq!(a.summary.resident, b.summary.resident);
    assert_eq!(a.summary.post_shutdown, b.summary.post_shutdown);
    assert_eq!(a.summary.device_types, b.summary.device_types);
    // Bitwise: HeadlineStats derives PartialEq over its f64 fields.
    assert_eq!(a.headline(), b.headline());
    // A clean run records no degraded days.
    assert!(a.degraded().is_empty());
}

#[test]
fn counterfactual_growth_is_deterministic() {
    let run = Study::builder(tiny())
        .threads(2)
        .with_counterfactual()
        .run()
        .unwrap();
    let again = Study::builder(tiny())
        .threads(3)
        .with_counterfactual()
        .run()
        .unwrap();
    let cf = run.counterfactual.as_ref().expect("requested");
    let cf2 = again.counterfactual.as_ref().expect("requested");
    assert_eq!(cf.growth_vs_2019.to_bits(), cf2.growth_vs_2019.to_bits());
    assert_eq!(run.growth_vs_2019(), Some(cf.growth_vs_2019));
    assert_eq!(cf.study.headline(), cf2.study.headline());
    // StudyRun derefs to the main study.
    assert_eq!(run.norm_stats, run.study.norm_stats);
}

#[test]
fn invalid_config_errors_before_any_work() {
    let err = Study::builder(SimConfig {
        scale: f64::NAN,
        ..Default::default()
    })
    .run()
    .err()
    .expect("NaN scale must be rejected");
    assert!(matches!(err, StudyError::Config(_)), "{err}");
}

#[test]
fn metrics_agree_with_pipeline_totals() {
    let study = Study::builder(tiny())
        .threads(4)
        .run()
        .unwrap()
        .into_study();
    let m = study.metrics();

    // Flow accounting closes: every generated flow entered the
    // pipeline, every attributed flow reached the collector, and the
    // collector's own observed-flow total matches.
    assert_eq!(m.counter("gen.flows"), m.counter("pipeline.flows_in"));
    assert_eq!(
        m.counter("normalize.attributed"),
        study.norm_stats.attributed
    );
    assert_eq!(
        m.counter("normalize.unattributed"),
        study.norm_stats.unattributed
    );
    assert_eq!(m.counter("normalize.foreign"), study.norm_stats.foreign);
    assert_eq!(
        m.counter("pipeline.flows_in"),
        m.counter("normalize.attributed")
            + m.counter("normalize.unattributed")
            + m.counter("normalize.foreign")
    );
    assert_eq!(
        m.counter("pipeline.flows_collected"),
        m.counter("normalize.attributed")
    );
    // Every collected flow went through the labeling stage.
    assert_eq!(
        m.counter("resolver.labeled") + m.counter("resolver.unlabeled"),
        m.counter("pipeline.flows_collected")
    );
    // Non-zero per-stage activity: sessions generated, leases
    // normalized, labels resolved.
    assert!(m.counter("gen.devices_active") > 0);
    assert!(m.counter("normalize.lease_events") > 0);
    assert_eq!(
        m.counter("gen.lease_events"),
        m.counter("normalize.lease_events")
    );
    assert!(m.counter("resolver.labeled") > 0);
    assert!(m.gauge("resolver.ips_peak") > 0);
    assert!(m.gauge("normalize.tracker.open_peak") > 0);
}

#[test]
fn observer_event_stream_covers_the_run() {
    let obs = Arc::new(CountingObserver::new());
    let run = Study::builder(tiny())
        .threads(3)
        .observer(Arc::clone(&obs))
        .run()
        .unwrap();
    let days = StudyCalendar::days().count() as u64;
    assert_eq!(obs.days_started(), days);
    assert_eq!(obs.days_finished(), days);
    assert_eq!(obs.workers_idled(), 3);
    // normalize + resolver flush once per day.
    assert_eq!(obs.stages_flushed(), 2 * days);
    assert_eq!(obs.flows(), run.norm_stats.attributed);
}

#[test]
fn trace_covers_every_day_regardless_of_thread_count() {
    let days = StudyCalendar::days().count();
    for threads in [1usize, 3] {
        let recorder = SpanRecorder::new();
        Study::builder(tiny())
            .threads(threads)
            .trace(&recorder)
            .run()
            .unwrap();
        let trace = recorder.finish();
        assert!(!trace.is_empty());
        let counts = trace.counts_by_name();
        // One span per study day, however the days were sharded.
        assert_eq!(counts.get("day").copied(), Some(days as u64));
        assert_eq!(counts.get("stream_day").copied(), Some(days as u64));
        assert_eq!(counts.get("worker").copied(), Some(threads as u64));
        assert_eq!(counts.get("build_sim").copied(), Some(1));
        assert_eq!(counts.get("finalize").copied(), Some(1));
        // The pipeline stages show up as aggregate stage spans.
        let stages = trace.stage_totals_ns();
        for stage in ["generate", "normalize", "resolver", "collect"] {
            assert!(stages.contains_key(stage), "missing stage {stage}");
        }
        // Lanes: one per worker plus the builder's orchestrator lane.
        for w in 0..threads as u32 {
            assert!(trace.lane_name(w).is_some(), "missing worker lane {w}");
        }
        assert!(trace.lane_name(trace::MAIN_LANE).is_some());
    }
}

#[test]
fn worker_idle_histogram_reaches_metrics_and_report() {
    let threads = 3usize;
    let study = Study::builder(tiny())
        .threads(threads)
        .run()
        .unwrap()
        .into_study();
    let m = study.metrics();
    let idle = m
        .histogram("study.worker_idle_ns")
        .expect("idle histogram recorded");
    // One tail-idle sample per worker; the last-finishing worker
    // contributes a zero, so the minimum is 0.
    assert_eq!(idle.count(), threads as u64);
    let text = report::metrics_report(&study);
    assert!(
        text.contains("Worker tail idle"),
        "idle summary missing from report:\n{text}"
    );
}

#[test]
fn metrics_report_renders_the_counters() {
    let study = Study::builder(tiny()).run().unwrap().into_study();
    let text = report::metrics_report(&study);
    assert!(text.contains("Pipeline metrics"));
    assert!(text.contains("pipeline.flows_in"));
    let json = report::metrics_report_json(&study);
    assert!(json.starts_with("{\"counters\":{"));
    assert!(json.contains("\"normalize.attributed\":"));
}
