//! Three-way pipeline equivalence: legacy batch vs. streamed vs.
//! batched-SoA.
//!
//! The repo keeps three drivers for the same record path:
//!
//! 1. **legacy batch** (`process_day`): materialize a `DayTrace`,
//!    batch-build the lease index and resolver map, collect from a
//!    `Vec<LabeledFlow>`. Kept precisely as the reference oracle.
//! 2. **streamed** (`process_day_streaming`): one event at a time
//!    through the stage pipeline, never materializing a day.
//! 3. **batched-SoA** (`process_day_batched`): the production hot path —
//!    struct-of-arrays `FlowBatch`es through the `BatchStage` seam.
//!
//! Same campus, same days: all three must be *identical*, down to the
//! bitwise-equal `f64`s in the headline statistics, at every batch size
//! (including 1, a size that straddles batch cuts mid-device, the
//! default, and one larger than any day) and under fault injection.
//! Parallel runs are held to the same standard — the ordered reducer
//! makes thread count and work-stealing schedule invisible, with no
//! float tolerance anywhere.

use analysis::collect::{PipelineCtx, StudyCollector};
use analysis::figures::{headline_stats, StudySummary};
use campussim::{CampusSim, FaultProfile, SimConfig};
use dhcplog::NormalizeStats;
use lockdown_core::{
    process_day, process_day_batched, process_day_streaming, PipelineOptions, Study,
    DEFAULT_BATCH_ROWS,
};
use nettrace::time::{Day, StudyCalendar};

fn cfg_1pct() -> SimConfig {
    SimConfig {
        scale: 0.01,
        ..Default::default()
    }
}

/// The legacy driver: sequential days, each fully materialized.
fn run_batch(cfg: SimConfig) -> (CampusSim, StudyCollector, NormalizeStats) {
    let sim = CampusSim::new(cfg);
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    let days: Vec<Day> = StudyCalendar::days().collect();
    for &day in &days {
        let trace = sim.day_trace(day);
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key);
        stats += process_day(opts, &mut collector, &trace);
    }
    (sim, collector, stats)
}

/// The streaming driver: sequential days, one event at a time.
fn run_streamed(cfg: SimConfig) -> (StudyCollector, NormalizeStats) {
    let sim = CampusSim::new(cfg);
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    for day in StudyCalendar::days() {
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key);
        stats += process_day_streaming(opts, &mut collector, &sim);
    }
    (collector, stats)
}

/// The batched-SoA driver: sequential days, `rows`-row flow batches.
fn run_batched(cfg: SimConfig, rows: usize) -> (StudyCollector, NormalizeStats) {
    let sim = CampusSim::new(cfg);
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    for day in StudyCalendar::days() {
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key)
            .batch_rows(rows);
        stats += process_day_batched(opts, &mut collector, &sim);
    }
    (collector, stats)
}

/// Full-study comparison of two collectors: summary sets, device
/// classifications, and bit-exact headline statistics.
fn assert_equivalent(
    a: &StudyCollector,
    b: &StudyCollector,
    a_stats: &NormalizeStats,
    b_stats: &NormalizeStats,
    label: &str,
) {
    assert_eq!(a_stats, b_stats, "normalization stats diverge: {label}");
    let sa = StudySummary::finalize(a);
    let sb = StudySummary::finalize(b);
    assert_eq!(sa.resident, sb.resident, "resident set diverges: {label}");
    assert_eq!(
        sa.post_shutdown, sb.post_shutdown,
        "post-shutdown set diverges: {label}"
    );
    assert_eq!(
        sa.device_types, sb.device_types,
        "device classification diverges: {label}"
    );
    assert_eq!(
        headline_stats(a, &sa),
        headline_stats(b, &sb),
        "headline statistics diverge: {label}"
    );
}

#[test]
fn streaming_study_matches_batch_study() {
    // `Study` drives the batched-SoA path; holding it against the legacy
    // batch oracle covers the production default end to end.
    let streamed = Study::builder(cfg_1pct()).run().unwrap().into_study();
    let (_sim, batch_collector, batch_stats) = run_batch(cfg_1pct());

    assert_eq!(
        streamed.norm_stats, batch_stats,
        "normalization statistics diverge between streaming and batch"
    );

    let batch_summary = StudySummary::finalize(&batch_collector);
    assert_eq!(streamed.summary.resident, batch_summary.resident);
    assert_eq!(streamed.summary.post_shutdown, batch_summary.post_shutdown);
    assert_eq!(streamed.summary.device_types, batch_summary.device_types);

    let hs = streamed.headline();
    let hb = headline_stats(&batch_collector, &batch_summary);
    assert_eq!(hs, hb, "headline statistics diverge");
}

#[test]
fn parallel_streaming_matches_batch_study() {
    // The work-stealing scheduler assigns days to workers
    // nondeterministically; the result must not care — bit for bit,
    // floats included. The ordered reducer folds day collectors in
    // calendar order regardless of schedule, so no tolerance is needed.
    let streamed = Study::builder(cfg_1pct())
        .threads(4)
        .run()
        .unwrap()
        .into_study();
    let (_sim, batch_collector, batch_stats) = run_batch(cfg_1pct());
    assert_eq!(streamed.norm_stats, batch_stats);
    let batch_summary = StudySummary::finalize(&batch_collector);
    let hs = streamed.headline();
    let hb = headline_stats(&batch_collector, &batch_summary);
    assert_eq!(hs, hb, "headline statistics diverge across schedules");
}

#[test]
fn three_way_equivalence_at_every_batch_size() {
    let (_sim, legacy, legacy_stats) = run_batch(cfg_1pct());
    let (streamed, stream_stats) = run_streamed(cfg_1pct());
    assert_equivalent(
        &legacy,
        &streamed,
        &legacy_stats,
        &stream_stats,
        "legacy vs streamed",
    );
    // Batch size 1 degenerates to per-record; 997 is odd and far from
    // any power of two, so cuts land mid-device-run; the default is the
    // production path; a huge size means one batch per day.
    for rows in [1usize, 997, DEFAULT_BATCH_ROWS, usize::MAX] {
        let (batched, batch_stats) = run_batched(cfg_1pct(), rows);
        assert_equivalent(
            &streamed,
            &batched,
            &stream_stats,
            &batch_stats,
            &format!("streamed vs batched(rows={rows})"),
        );
    }
}

#[test]
fn faulted_runs_are_bit_identical_across_threads_and_batch_sizes() {
    // The fault layer draws its RNG per record upstream of the batcher,
    // so a corrupted stream is the *same* corrupted stream at any batch
    // size and thread count.
    let profile = || {
        FaultProfile::new()
            .frame_corruption(0.05)
            .dns_answer_drops(0.05)
    };
    let base = Study::builder(cfg_1pct())
        .fault_profile(profile())
        .run()
        .unwrap()
        .into_study();
    for (threads, rows) in [(1usize, 1usize), (4, 513), (4, DEFAULT_BATCH_ROWS)] {
        let other = Study::builder(cfg_1pct())
            .fault_profile(profile())
            .threads(threads)
            .batch_rows(rows)
            .run()
            .unwrap()
            .into_study();
        assert_eq!(
            base.norm_stats, other.norm_stats,
            "faulted stats diverge at threads={threads} rows={rows}"
        );
        assert_eq!(
            base.headline(),
            other.headline(),
            "faulted headline diverges at threads={threads} rows={rows}"
        );
        // The fault taxonomy itself is schedule- and batch-invariant.
        for name in [
            "pipeline.errors.flows_dropped",
            "pipeline.errors.leases_dropped",
            "pipeline.errors.dns_answers_dropped",
            "pipeline.errors.dns_duplicated",
        ] {
            assert_eq!(
                base.metrics().counter(name),
                other.metrics().counter(name),
                "fault counter {name} diverges at threads={threads} rows={rows}"
            );
        }
    }
}
