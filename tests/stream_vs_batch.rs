//! Streaming pipeline vs. legacy batch pipeline equivalence.
//!
//! A study run streams every day end-to-end through the stage pipeline
//! (`process_day_streaming`), never materializing a day of flows. The
//! legacy batch path — materialize a `DayTrace`, batch-build the lease
//! index and resolver map, collect from a `Vec<LabeledFlow>` — is kept
//! as `process_day` precisely so this test can hold the two up against
//! each other: same campus, same days, results must be *identical*,
//! down to the bitwise-equal `f64`s in the headline statistics.

use analysis::collect::{PipelineCtx, StudyCollector};
use analysis::figures::{headline_stats, StudySummary};
use campussim::{CampusSim, SimConfig};
use dhcplog::NormalizeStats;
use lockdown_core::{process_day, PipelineOptions, Study};
use nettrace::time::{Day, StudyCalendar};

/// The legacy driver: sequential days, each fully materialized.
fn run_batch(cfg: SimConfig) -> (CampusSim, StudyCollector, NormalizeStats) {
    let sim = CampusSim::new(cfg);
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();
    let mut stats = NormalizeStats::default();
    let days: Vec<Day> = StudyCalendar::days().collect();
    for &day in &days {
        let trace = sim.day_trace(day);
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key);
        stats += process_day(opts, &mut collector, &trace);
    }
    (sim, collector, stats)
}

#[test]
fn streaming_study_matches_batch_study() {
    let cfg = SimConfig {
        scale: 0.01,
        ..Default::default()
    };

    let streamed = Study::builder(cfg.clone()).run().unwrap().into_study();
    let (_sim, batch_collector, batch_stats) = run_batch(cfg);

    assert_eq!(
        streamed.norm_stats, batch_stats,
        "normalization statistics diverge between streaming and batch"
    );

    let batch_summary = StudySummary::finalize(&batch_collector);
    assert_eq!(streamed.summary.resident, batch_summary.resident);
    assert_eq!(streamed.summary.post_shutdown, batch_summary.post_shutdown);
    assert_eq!(streamed.summary.device_types, batch_summary.device_types);

    let hs = streamed.headline();
    let hb = headline_stats(&batch_collector, &batch_summary);
    assert_eq!(hs, hb, "headline statistics diverge");
}

#[test]
fn parallel_streaming_matches_batch_study() {
    // The work-stealing scheduler assigns days to workers
    // nondeterministically; the result must not care.
    let cfg = SimConfig {
        scale: 0.01,
        ..Default::default()
    };
    let streamed = Study::builder(cfg.clone())
        .threads(4)
        .run()
        .unwrap()
        .into_study();
    let (_sim, batch_collector, batch_stats) = run_batch(cfg);
    assert_eq!(streamed.norm_stats, batch_stats);
    let batch_summary = StudySummary::finalize(&batch_collector);
    let hs = streamed.headline();
    let hb = headline_stats(&batch_collector, &batch_summary);
    assert_eq!(hs.peak_active, hb.peak_active);
    assert_eq!(hs.post_shutdown_devices, hb.post_shutdown_devices);
    assert_eq!(hs.intl_devices, hb.intl_devices);
    assert_eq!(hs.switches_pre, hb.switches_pre);
    // f64 aggregates may regroup across workers; same tolerance the
    // sequential/parallel oracle uses.
    assert!((hs.traffic_growth_feb_to_aprmay - hb.traffic_growth_feb_to_aprmay).abs() < 1e-9);
    assert!((hs.sites_growth - hb.sites_growth).abs() < 1e-9);
}
