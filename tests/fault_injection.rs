//! End-to-end acceptance tests for the fault-injection harness and the
//! runner's graceful-degradation machinery: a seeded `FaultProfile`
//! corrupting ~1% of the record stream (plus one injected worker panic)
//! must leave the study complete, fully accounted, and within tolerance
//! of a clean run — and `strict` mode must turn the same faults into a
//! typed error.

use campussim::{FaultProfile, SimConfig};
use lockdown_core::{report, Study, StudyError};
use lockdown_obs::SpanRecorder;
use nettrace::time::StudyCalendar;

fn tiny() -> SimConfig {
    SimConfig {
        scale: 0.01,
        ..Default::default()
    }
}

/// Headline closeness: within 2% relative, with a small absolute floor
/// so tiny counts (e.g. new Switches at 1% scale) don't fail on ±1.
fn close(what: &str, a: f64, b: f64) {
    let tol = (0.02 * a.abs().max(b.abs())).max(2.0);
    assert!(
        (a - b).abs() <= tol,
        "{what}: faulted {a} vs clean {b} (tolerance {tol})"
    );
}

#[test]
fn default_fault_profile_degrades_gracefully() {
    let recorder = SpanRecorder::new();
    let run = Study::builder(tiny())
        .threads(4)
        .trace(&recorder)
        .fault_profile(FaultProfile::default_profile())
        .run()
        .expect("non-strict faulted run completes");
    let study = run.into_study();

    // The injected panic on day 47 was quarantined and recovered on
    // retry; no day was dropped.
    let degraded = study.degraded();
    assert_eq!(degraded.recovered.len(), 1, "{degraded:?}");
    assert!(degraded.failed.is_empty(), "{degraded:?}");
    assert_eq!(degraded.recovered[0].day, 47);
    assert_eq!(degraded.recovered[0].attempt, 0);
    assert!(degraded.recovered[0].error.contains("injected"));

    // The timeline still shows every study day, plus exactly one retry.
    let days = StudyCalendar::days().count() as u64;
    let trace = recorder.finish();
    let counts = trace.counts_by_name();
    assert_eq!(counts.get("day").copied(), Some(days));
    assert_eq!(counts.get("day.retry").copied(), Some(1));

    // Error accounting is non-zero and closes: every generated flow
    // either entered the pipeline or was counted as dropped.
    let m = study.metrics();
    assert!(m.counter("pipeline.errors.flows_dropped") > 0);
    assert!(m.counter("pipeline.errors.dns_answers_dropped") > 0);
    assert!(m.counter("pipeline.errors.dns_duplicated") > 0);
    assert!(m.counter("pipeline.errors.leases_dropped") > 0);
    assert_eq!(
        m.counter("gen.flows"),
        m.counter("pipeline.flows_in") + m.counter("pipeline.errors.flows_dropped")
    );
    assert_eq!(
        m.counter("assembler.malformed.frames_truncated")
            + m.counter("assembler.malformed.frames_garbled")
            + m.counter("assembler.malformed.frames_skipped")
            + m.counter("assembler.malformed.pcap_truncated"),
        m.counter("pipeline.errors.flows_dropped")
    );

    // The degradation is visible in the human report…
    let text = report::metrics_report(&study);
    assert!(text.contains("Degraded input"), "{text}");
    assert!(text.contains("Degraded days: 1 recovered"), "{text}");

    // …and in the machine-readable manifest.
    let manifest = report::run_manifest(&study, 4, None);
    let json = manifest.to_json();
    assert!(json.contains("\"degraded\":[{"), "degraded section missing");
    assert!(json.contains("\"day\":47"));
    assert!(json.contains("\"recovered\":true"));
    assert!(json.contains("pipeline.errors."));
    assert!(json.contains("assembler.malformed."));

    // All eight figure files still emerge.
    let dir = std::env::temp_dir().join("lockdown_fault_injection_test");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(report::write_figure_files(&study, &dir).unwrap(), 8);
    std::fs::remove_dir_all(&dir).ok();

    // Headline statistics survive ~1% record corruption to within 2%.
    let clean = Study::builder(tiny())
        .threads(4)
        .run()
        .unwrap()
        .into_study();
    let hf = study.headline();
    let hc = clean.headline();
    close("peak_active", hf.peak_active as f64, hc.peak_active as f64);
    close(
        "trough_active",
        hf.trough_active as f64,
        hc.trough_active as f64,
    );
    close(
        "post_shutdown_devices",
        hf.post_shutdown_devices as f64,
        hc.post_shutdown_devices as f64,
    );
    close(
        "intl_devices",
        hf.intl_devices as f64,
        hc.intl_devices as f64,
    );
    close(
        "identified_devices",
        hf.identified_devices as f64,
        hc.identified_devices as f64,
    );
    close(
        "traffic_growth",
        hf.traffic_growth_feb_to_aprmay,
        hc.traffic_growth_feb_to_aprmay,
    );
    close("sites_growth", hf.sites_growth, hc.sites_growth);
    close(
        "switches_pre",
        hf.switches_pre as f64,
        hc.switches_pre as f64,
    );
    close(
        "switches_post",
        hf.switches_post as f64,
        hc.switches_post as f64,
    );
}

#[test]
fn faulted_runs_are_deterministic() {
    let profile = FaultProfile::default_profile();
    let a = Study::builder(tiny())
        .threads(4)
        .fault_profile(profile.clone())
        .run()
        .unwrap()
        .into_study();
    let b = Study::builder(tiny())
        .threads(1)
        .fault_profile(profile)
        .run()
        .unwrap()
        .into_study();
    // Corruption is keyed by (profile seed, day), not by worker or
    // schedule, so faulted runs reproduce bit for bit too.
    assert_eq!(a.norm_stats, b.norm_stats);
    assert_eq!(a.headline(), b.headline());
    assert_eq!(a.metrics().counters, b.metrics().counters);
    assert_eq!(a.degraded(), b.degraded());
}

#[test]
fn strict_mode_turns_the_injected_panic_into_an_error() {
    let err = Study::builder(tiny())
        .threads(2)
        .fault_profile(FaultProfile::default_profile())
        .strict(true)
        .run()
        .err()
        .expect("strict faulted run must fail");
    match err {
        StudyError::DayFailed(f) => {
            assert_eq!(f.day, 47);
            assert_eq!(f.attempt, 0);
            assert_eq!(f.stage, "pipeline");
        }
        other => panic!("expected DayFailed, got {other}"),
    }
}
