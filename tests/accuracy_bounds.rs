//! The digest accuracy contract, measured: every distribution figure a
//! digest run renders stays within its guaranteed multiplicative bound
//! of the exact computation, at every shard count and scale, and the
//! headline statistics stay bit-identical. This is the empirical check
//! behind the manifest `accuracy` section's promises.

use analysis::accuracy::{self, FIGURE_CLASSES};
use analysis::LogHist;
use campussim::SimConfig;
use lockdown_core::Study;
use proptest::prelude::*;

fn config(scale: f64) -> SimConfig {
    SimConfig {
        scale,
        seed: 0xacc1,
        ..Default::default()
    }
}

/// Digest figures honor every per-figure bound in `FIGURE_CLASSES`
/// against the exact path, across shard counts and scales. K = 1
/// isolates pure histogram error; larger K adds the merge, which is
/// additive and must not widen the error.
#[test]
fn digest_error_within_bounds_across_shards_and_scales() {
    for scale in [0.01, 0.02] {
        let exact = Study::builder(config(scale))
            .threads(2)
            .run()
            .expect("exact study")
            .into_study();
        let reference = accuracy::exact_figures(&exact.collector, &exact.summary);
        for k in [1u32, 2, 7, 64] {
            let d = Study::builder(config(scale))
                .threads(2)
                .shards(k)
                .run_digest()
                .expect("digest study");
            assert_eq!(d.sharding().shards, k);
            let report = accuracy::compare(&d.figures, &reference);
            assert!(
                report.within_bounds(),
                "scale {scale} K={k} violates the contract:\n{}",
                report.to_text()
            );
            assert_eq!(
                report.headline_max_abs_delta, 0.0,
                "headline must be exact at scale {scale} K={k}"
            );
            assert_eq!(report.figures.len(), FIGURE_CLASSES.len());
        }
    }
}

/// A figure set compared against itself reports zero drift — the
/// instrument itself cannot invent error.
#[test]
fn self_comparison_is_driftless() {
    let d = Study::builder(config(0.01))
        .threads(2)
        .shards(2)
        .run_digest()
        .expect("digest study");
    let report = accuracy::compare(&d.figures, &d.figures);
    assert!(report.within_bounds());
    assert_eq!(report.headline_max_abs_delta, 0.0);
    assert_eq!(report.worst_ratio(), 1.0);
    for f in &report.figures {
        assert_eq!(f.mismatched, 0, "{}", f.figure);
        assert_eq!(f.max_abs_delta, 0.0, "{}", f.figure);
    }
}

/// The digest counterfactual rides the same contract: streamed as a
/// second digest ladder, its aggregate growth ratio is finite and its
/// 2019 twin population is nonempty.
#[test]
fn digest_counterfactual_streams_alongside_factual() {
    let d = Study::builder(config(0.01))
        .threads(2)
        .shards(2)
        .with_counterfactual()
        .run_digest()
        .expect("digest study");
    let cf = d.counterfactual.as_ref().expect("counterfactual digest");
    assert!(cf.resident_devices > 0);
    assert!(cf.aggregate_growth_vs_2019.is_finite());
    // Without the flag the field stays empty — no silent extra work.
    let plain = Study::builder(config(0.01))
        .threads(2)
        .shards(2)
        .run_digest()
        .expect("digest study");
    assert!(plain.counterfactual.is_none());
}

proptest! {
    /// `LogHist::quantile` is within `QUANTILE_BOUND` of the exact R-7
    /// quantile for arbitrary positive samples and probabilities — the
    /// bound the manifest advertises, checked sample-free of any
    /// pipeline context.
    #[test]
    fn loghist_quantile_within_bound(
        values in proptest::collection::vec(1u64..1 << 48, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut h = LogHist::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        let exact = analysis::stats::percentile_sorted(&sorted, q).expect("nonempty");
        let approx = h.quantile(q).expect("nonempty");
        prop_assert!(
            approx <= exact * analysis::QUANTILE_BOUND + 1e-9
                && approx >= exact / analysis::QUANTILE_BOUND - 1e-9,
            "q={q}: approx {approx} vs exact {exact} exceeds the bound"
        );
    }
}
