//! Large-scale figure-shape tests: the sub-population trend claims need
//! group sizes near the paper's (n in the hundreds), which requires a
//! quarter-scale campus. Ignored by default; run with
//!
//! ```sh
//! cargo test --release --test figures_shape_large -- --ignored
//! ```

use analysis::figures;
use campussim::SimConfig;
use lockdown_core::Study;

#[test]
#[ignore = "quarter-scale study: ~30 s in release mode"]
fn fig6_international_trends_at_scale() {
    let s = Study::builder(SimConfig::at_scale(0.25))
        .threads(8)
        .run()
        .unwrap()
        .into_study();
    let f6 = figures::figure6(&s.collector, &s.summary);
    let med = |app: usize, sp: usize, m: usize| {
        f6.boxes[app][sp][m]
            .expect("samples at quarter scale")
            .median
    };
    // Facebook: international usage rises through the shutdown while the
    // domestic median falls by May; the Feb gap narrows (§5.2).
    assert!(med(0, 1, 2) > med(0, 1, 0), "FB intl Apr > Feb");
    assert!(med(0, 0, 3) < med(0, 0, 0), "FB dom May < Feb");
    let feb_gap = med(0, 0, 0) - med(0, 1, 0);
    let may_gap = med(0, 0, 3) - med(0, 1, 3);
    assert!(
        may_gap < feb_gap,
        "gap should narrow: {feb_gap:.2} -> {may_gap:.2}"
    );
    // Instagram: international May above April and February.
    assert!(med(1, 1, 3) > med(1, 1, 0), "IG intl May > Feb");
    // TikTok: international well below domestic in February.
    assert!(med(2, 1, 0) < med(2, 0, 0), "TT intl < dom");
    // Group sizes grow for TikTok (adoption) for both subpops.
    let n = |sp: usize, m: usize| f6.boxes[2][sp][m].map(|b| b.n).unwrap_or(0);
    assert!(n(0, 3) > n(0, 0));
    assert!(n(1, 3) >= n(1, 0));
}

#[test]
#[ignore = "quarter-scale study: ~30 s in release mode"]
fn fig7_steam_connection_decline_at_scale() {
    let s = Study::builder(SimConfig::at_scale(0.25))
        .threads(8)
        .run()
        .unwrap()
        .into_study();
    let f7 = figures::figure7(&s.collector, &s.summary);
    let conns = |sp: usize, m: usize| f7.conns[sp][m].expect("samples").median;
    // Domestic connection medians decline over the study (Figure 7b).
    // Session quantization flattens the tail months, so assert the
    // trend's endpoints and the early decline rather than strict
    // month-over-month monotonicity.
    assert!(conns(0, 0) >= conns(0, 1));
    assert!(
        conns(0, 3) < conns(0, 0),
        "May {} !< Feb {}",
        conns(0, 3),
        conns(0, 0)
    );
    assert!(conns(0, 2) < conns(0, 0));
    // International connections spike in March.
    assert!(conns(1, 1) > 1.5 * conns(1, 0));
    // Domestic active-device count peaks in May (the paper's n row).
    let n = |sp: usize, m: usize| f7.bytes[sp][m].map(|b| b.n).unwrap_or(0);
    assert!(
        n(0, 3) > n(0, 0),
        "May n {} should exceed Feb n {}",
        n(0, 3),
        n(0, 0)
    );
}
