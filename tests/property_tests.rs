//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use dhcplog::{LeaseAction, LeaseEvent, LeaseIndex};
use nettrace::ip::{Ipv4Cidr, PrefixSet};
use nettrace::time::{civil_from_days, days_from_civil, StudyCalendar, Timestamp};
use nettrace::MacAddr;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Civil-date conversion is a bijection over a huge range.
    #[test]
    fn civil_date_bijection(day in -1_000_000i64..1_000_000) {
        let (y, m, d) = civil_from_days(day);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(days_from_civil(y, m, d), day);
    }

    /// Timestamp second/microsecond decomposition is consistent.
    #[test]
    fn timestamp_decomposition(micros in i64::MIN/2..i64::MAX/2) {
        let t = Timestamp::from_micros(micros);
        prop_assert_eq!(t.secs() * 1_000_000 + t.subsec_micros() as i64, micros);
        prop_assert!(t.subsec_micros() < 1_000_000);
    }

    /// Hour-of-week is always in range and consistent with hour-of-day.
    #[test]
    fn hour_of_week_in_range(offset in 0i64..(121 * 86_400)) {
        let ts = Timestamp::from_secs(StudyCalendar::STUDY_START_SECS + offset);
        let h = StudyCalendar::hour_of_week(ts);
        prop_assert!(h < 168);
        prop_assert_eq!(h % 24, StudyCalendar::hour_of_day(ts) as usize);
    }

    /// PrefixSet::longest_match agrees with a naive scan.
    #[test]
    fn prefix_set_matches_naive(
        prefixes in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..20),
        probe in any::<u32>()
    ) {
        let cidrs: Vec<Ipv4Cidr> = prefixes
            .iter()
            .map(|&(addr, len)| Ipv4Cidr::new(Ipv4Addr::from(addr), len))
            .collect();
        let set = PrefixSet::from_iter(cidrs.iter().copied());
        let addr = Ipv4Addr::from(probe);
        let naive = cidrs
            .iter()
            .filter(|c| c.contains(addr))
            .max_by_key(|c| c.prefix_len())
            .map(|c| c.prefix_len());
        prop_assert_eq!(set.longest_match(addr).map(|c| c.prefix_len()), naive);
    }

    /// MAC parsing round-trips display output.
    #[test]
    fn mac_display_parse_roundtrip(octets in any::<[u8; 6]>()) {
        let mac = MacAddr(octets);
        prop_assert_eq!(mac.to_string().parse::<MacAddr>().unwrap(), mac);
    }

    /// The lease index never attributes an IP outside any lease interval
    /// and agrees with a naive interval scan.
    #[test]
    fn lease_index_matches_naive(
        events in proptest::collection::vec(
            (0i64..10_000, 0u8..3, 0u8..4, 0u8..4),
            1..40
        ),
        probe_ts in 0i64..12_000,
        probe_ip in 0u8..4
    ) {
        let to_event = |&(ts, action, ip, mac): &(i64, u8, u8, u8)| LeaseEvent {
            ts: Timestamp::from_secs(ts),
            action: match action {
                0 => LeaseAction::Assign,
                1 => LeaseAction::Renew,
                _ => LeaseAction::Release,
            },
            ip: Ipv4Addr::new(10, 40, 0, ip),
            mac: MacAddr::new(0, 0, 0, 0, 0, mac),
        };
        let evs: Vec<LeaseEvent> = events.iter().map(to_event).collect();
        let idx = LeaseIndex::build(&evs, 3600);
        let got = idx.lookup(Ipv4Addr::new(10, 40, 0, probe_ip), Timestamp::from_secs(probe_ts));

        // Naive re-simulation of the ownership rules.
        let mut sorted = evs.clone();
        sorted.sort_by_key(|e| e.ts);
        let mut owner: Option<(MacAddr, i64, i64)> = None; // (mac, start, last_activity)
        let mut naive = None;
        let ip = Ipv4Addr::new(10, 40, 0, probe_ip);
        let mut intervals: Vec<(i64, i64, MacAddr)> = Vec::new();
        for e in &sorted {
            if e.ip != ip { continue; }
            let ts = e.ts.secs();
            match e.action {
                LeaseAction::Assign => {
                    if let Some((m, s, la)) = owner.take() {
                        if m == e.mac {
                            owner = Some((m, s, ts));
                            continue;
                        }
                        intervals.push((s, ts.min(la + 3600).max(s), m));
                    }
                    owner = Some((e.mac, ts, ts));
                }
                LeaseAction::Renew => {
                    if let Some((m, _, la)) = &mut owner {
                        if *m == e.mac { *la = ts; }
                    }
                }
                LeaseAction::Release => {
                    if let Some((m, s, la)) = owner.take() {
                        if m == e.mac {
                            intervals.push((s, ts.min(la + 3600).max(s), m));
                        } else {
                            owner = Some((m, s, la));
                        }
                    }
                }
            }
        }
        if let Some((m, s, la)) = owner {
            intervals.push((s, la + 3600, m));
        }
        for (s, epoch_end, m) in intervals {
            if (s..epoch_end).contains(&probe_ts) {
                naive = Some(m);
            }
        }
        prop_assert_eq!(got, naive);
    }

    /// Session stitching never produces overlapping sessions for the same
    /// (device, family) and preserves total bytes.
    #[test]
    fn stitcher_invariants(
        flows in proptest::collection::vec((0i64..5_000, 1i64..600, 1u64..1_000_000), 1..50),
        gap in 0i64..120
    ) {
        use appsig::{App, SessionStitcher};
        use nettrace::DeviceId;
        let mut sorted = flows.clone();
        sorted.sort();
        let mut st = SessionStitcher::with_gap_secs(gap);
        let mut total = 0u64;
        for &(start, dur, bytes) in &sorted {
            total += bytes;
            st.push(
                DeviceId(1),
                App::TikTok,
                Timestamp::from_secs(start),
                Timestamp::from_secs(start + dur),
                bytes,
            );
        }
        let sessions = st.finish();
        prop_assert_eq!(sessions.iter().map(|s| s.bytes).sum::<u64>(), total);
        prop_assert_eq!(
            sessions.iter().map(|s| s.flows as usize).sum::<usize>(),
            sorted.len()
        );
        for w in sessions.windows(2) {
            // Sorted by start; successive sessions separated by > gap.
            prop_assert!(w[1].start.delta_secs(w[0].end) >= gap);
        }
    }

    /// Box stats are ordered for arbitrary inputs.
    #[test]
    fn box_stats_ordered(values in proptest::collection::vec(0.0f64..1e12, 1..200)) {
        let mut v = values.clone();
        let b = analysis::BoxStats::compute(&mut v).unwrap();
        prop_assert!(b.p1 <= b.q1);
        prop_assert!(b.q1 <= b.median);
        prop_assert!(b.median <= b.q3);
        prop_assert!(b.q3 <= b.p95);
        prop_assert!(b.p95 <= b.p99);
        prop_assert_eq!(b.n, values.len());
    }

    /// Domain suffix matching is consistent with string semantics.
    #[test]
    fn domain_suffix_semantics(
        label_a in "[a-z][a-z0-9]{0,8}",
        label_b in "[a-z][a-z0-9]{0,8}",
        label_c in "[a-z][a-z0-9]{0,8}"
    ) {
        use dnslog::DomainName;
        let full = DomainName::parse(&format!("{label_a}.{label_b}.{label_c}")).unwrap();
        let suffix = format!("{label_b}.{label_c}");
        prop_assert!(full.is_under(&suffix));
        prop_assert!(full.is_under(&label_c));
        prop_assert!(full.is_under(full.as_str()));
        // A mangled suffix must not match unless it coincides.
        let bogus = format!("x{label_b}.{label_c}");
        if format!("{label_a}.{label_b}") != format!("x{label_b}") {
            prop_assert!(!full.is_under(&bogus));
        }
    }

    /// Anonymization is injective in practice over dense MAC blocks.
    #[test]
    fn anonymization_injective(base in any::<u32>(), key in any::<u64>()) {
        use nettrace::DeviceId;
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..64u32 {
            let mac = MacAddr::from_oui_suffix(nettrace::Oui::new(0, 0x1a, 0x2b), base.wrapping_add(i) & 0xff_ffff);
            seen.insert(DeviceId::anonymize(mac, key));
        }
        // 64 distinct MACs (suffixes may wrap to at most 64 distinct values).
        let distinct_macs: HashSet<u32> = (0..64u32).map(|i| base.wrapping_add(i) & 0xff_ffff).collect();
        prop_assert_eq!(seen.len(), distinct_macs.len());
    }
}

#[test]
fn generator_determinism_across_thread_counts() {
    // Running the study sequentially and with 8 threads produces the
    // same collected state (merge commutativity).
    use campussim::SimConfig;
    let a = lockdown_core::Study::builder(SimConfig::at_scale(0.005))
        .run()
        .unwrap()
        .into_study();
    let b = lockdown_core::Study::builder(SimConfig::at_scale(0.005))
        .threads(8)
        .run()
        .unwrap()
        .into_study();
    assert_eq!(a.norm_stats, b.norm_stats);
    let ha = a.headline();
    let hb = b.headline();
    assert_eq!(ha.peak_active, hb.peak_active);
    assert_eq!(ha.trough_active, hb.trough_active);
    assert_eq!(ha.post_shutdown_devices, hb.post_shutdown_devices);
    assert_eq!(ha.intl_devices, hb.intl_devices);
    assert_eq!(ha.switches_pre, hb.switches_pre);
    assert!((ha.sites_growth - hb.sites_growth).abs() < 1e-12);
}

/// Robustness of the `nettrace::pcap::Reader` against hostile input:
/// truncations at every byte boundary, random byte flips, and garbage
/// magic must surface as `Err` or a clean `Ok(None)` — never a panic,
/// oversized allocation, or non-terminating loop. Written as seeded
/// deterministic sweeps (not `proptest!`) so the cases run identically
/// everywhere.
mod pcap_corruption {
    use nettrace::pcap::{Reader, Writer};
    use nettrace::time::Timestamp;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const RECORDS: usize = 6;

    /// A small, valid capture with variable-length records.
    fn valid_capture() -> Vec<u8> {
        let mut w = Writer::new(Vec::new()).expect("header write");
        for i in 0..RECORDS {
            let frame: Vec<u8> = (0..(14 + 17 * i)).map(|b| (b as u8) ^ (i as u8)).collect();
            w.write(Timestamp::from_secs(1_580_515_200 + i as i64), &frame)
                .expect("record write");
        }
        w.finish().expect("finish")
    }

    /// Drain a reader to exhaustion: the record count before the stream
    /// ended, and whether it ended in an error.
    fn drain(bytes: &[u8]) -> (usize, bool) {
        let mut reader = match Reader::new(bytes) {
            Ok(r) => r,
            Err(_) => return (0, true),
        };
        let mut n = 0;
        loop {
            match reader.next_record() {
                Ok(Some(_)) => n += 1,
                Ok(None) => return (n, false),
                Err(_) => return (n, true),
            }
        }
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics() {
        let full = valid_capture();
        assert_eq!(drain(&full), (RECORDS, false));
        for cut in 0..full.len() {
            let (n, _errored) = drain(&full[..cut]);
            // A prefix can only ever contain a prefix of the records.
            assert!(n <= RECORDS, "cut at {cut} yielded {n} records");
        }
        // Cutting inside the global header always errors.
        for cut in 0..24.min(full.len()) {
            let (n, errored) = drain(&full[..cut]);
            assert_eq!((n, errored), (0, true), "cut at {cut}");
        }
    }

    #[test]
    fn random_byte_flips_never_panic() {
        let full = valid_capture();
        let mut rng = SmallRng::seed_from_u64(0x9ca9_f11b);
        for case in 0..500 {
            let mut damaged = full.clone();
            for _ in 0..rng.gen_range(1..=8usize) {
                let pos = rng.gen_range(0..damaged.len());
                damaged[pos] ^= rng.gen_range(1..=255u8);
            }
            let (n, _errored) = drain(&damaged);
            // Length-field damage can split or merge records, but the
            // bounded snap length keeps the count finite and small.
            assert!(n <= damaged.len() / 16 + 1, "case {case} yielded {n}");
        }
    }

    #[test]
    fn random_garbage_and_bad_magic_are_rejected_cleanly() {
        let mut rng = SmallRng::seed_from_u64(0xbad_dead);
        for len in [0usize, 1, 23, 24, 25, 64, 1024] {
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            // Garbage overwhelmingly fails the magic check; rare lucky
            // headers still must drain without panicking.
            let _ = drain(&garbage);
        }
        // An explicit wrong magic on an otherwise valid file.
        let mut bad = valid_capture();
        bad[0] ^= 0xff;
        assert_eq!(drain(&bad), (0, true));
    }

    #[test]
    fn truncated_mid_record_reports_short_prefix() {
        let full = valid_capture();
        // Cut in the middle of the last record's body: every earlier
        // record parses, the tail is reported as truncation.
        let cut = full.len() - 3;
        let (n, errored) = drain(&full[..cut]);
        assert_eq!(n, RECORDS - 1);
        assert!(errored);
    }
}

/// Scenario serialization properties, written as deterministic sweeps
/// (not `proptest!`) so they run identically everywhere: canonical
/// TOML is a parse fixpoint, the content hash ignores formatting
/// noise, and single-character corruption never panics the strict
/// parser.
mod scenario_round_trip {
    use campussim::Scenario;

    #[test]
    fn every_builtin_round_trips_to_a_fixpoint() {
        for scenario in Scenario::builtins() {
            let once = scenario.to_toml();
            let reparsed = Scenario::parse(&once).expect("canonical TOML reparses");
            assert_eq!(once, reparsed.to_toml(), "{} not a fixpoint", scenario.name);
            assert_eq!(scenario.content_hash(), reparsed.content_hash());
        }
    }

    #[test]
    fn content_hash_survives_reformatting() {
        for scenario in Scenario::builtins() {
            let noisy: String = scenario
                .to_toml()
                .lines()
                .map(|l| format!("\n{l}   \n# formatting noise\n"))
                .collect();
            let reparsed = Scenario::parse(&noisy).expect("noisy TOML reparses");
            assert_eq!(scenario.content_hash(), reparsed.content_hash());
        }
    }

    #[test]
    fn corrupted_scenario_text_never_panics() {
        let toml = Scenario::builtins()[0].to_toml();
        for i in 0..toml.len() {
            // Flip one byte to '?' — the parser must reject or accept,
            // never panic or loop.
            let mut bytes = toml.clone().into_bytes();
            bytes[i] = b'?';
            if let Ok(corrupted) = String::from_utf8(bytes) {
                let _ = Scenario::parse(&corrupted);
            }
            // And truncate at every char boundary.
            if toml.is_char_boundary(i) {
                let _ = Scenario::parse(&toml[..i]);
            }
        }
    }
}
