//! Live telemetry end-to-end: a served run can be scraped mid-flight
//! with strictly parseable exposition whose `pipeline.flows*` counters
//! never regress, and serving is observation-only — figures, stats,
//! and the manifest config hash are bit-identical to an unserved run
//! at the same seed and thread count.

use analysis::{export, figures};
use campussim::SimConfig;
use lockdown_obs::prom;
use locked_in_lockdown::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};

fn tiny() -> SimConfig {
    SimConfig {
        scale: 0.02,
        ..Default::default()
    }
}

/// One blocking GET against a local telemetry server; returns the body
/// after asserting a 200.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 200"), "{path}: {raw}");
    raw.split_once("\r\n\r\n")
        .expect("headers end")
        .1
        .to_string()
}

#[test]
fn mid_run_scrapes_parse_and_flow_counters_are_monotone() {
    let live = LivePublisher::new();
    let server = TelemetryServer::bind("127.0.0.1:0", live.clone()).expect("bind");
    let addr = server.addr();

    // Scrape continuously from a second thread while the run streams.
    let poller_live = live.clone();
    let poller = std::thread::spawn(move || {
        let mut last: BTreeMap<String, f64> = BTreeMap::new();
        let mut scrapes = 0u32;
        while !poller_live.is_finished() {
            let body = http_get(addr, "/metrics");
            let exposition = prom::parse(&body).expect("mid-run exposition must parse");
            for family in &exposition.families {
                if family.kind != "counter" || !family.name.starts_with("pipeline_flows") {
                    continue;
                }
                for sample in &family.samples {
                    let prev = last
                        .insert(family.name.clone(), sample.value)
                        .unwrap_or(0.0);
                    assert!(
                        sample.value >= prev,
                        "{} regressed mid-run: {} < {prev}",
                        family.name,
                        sample.value,
                    );
                }
            }
            scrapes += 1;
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        (scrapes, last)
    });

    let run = Study::builder(tiny())
        .threads(2)
        .live(&live)
        .run()
        .expect("served run");
    let (scrapes, last) = poller.join().expect("poller");
    assert!(
        scrapes >= 2,
        "run too fast to observe mid-flight: {scrapes}"
    );

    // The final scrape state can never exceed the run's own totals, and
    // after finish() the live view equals them exactly.
    let flows = run.study.metrics().counter("pipeline.flows_collected");
    let final_live = live.metrics().counter("pipeline.flows_collected");
    assert_eq!(final_live, flows);
    for (name, value) in &last {
        assert!(*value <= flows as f64, "{name} overshot: {value} > {flows}");
    }

    // Post-run endpoints report the finished state.
    let health = http_get(addr, "/healthz");
    assert!(health.contains("\"status\":\"done\""), "{health}");
    let progress: serde_json::Value =
        serde_json::from_str(&http_get(addr, "/progress")).expect("strict progress JSON");
    let field = |key: &str| progress.get(key).expect(key).clone();
    assert_eq!(field("status").as_str(), Some("done"));
    assert_eq!(field("eta_ns").as_u64(), Some(0));
    assert_eq!(
        field("days_completed").as_u64(),
        field("days_total").as_u64()
    );

    // The exposition carries the run-level live gauges and quantile
    // companions for the day-duration histogram.
    let body = http_get(addr, "/metrics");
    let exposition = prom::parse(&body).expect("final exposition");
    assert!(exposition.value("study_live_days_completed").is_some());
    assert!(exposition.family("study_day_duration_ns").is_some());
    assert!(exposition
        .family("study_day_duration_ns_quantile")
        .is_some());
}

#[test]
fn concurrent_scrapes_see_strict_monotone_snapshots() {
    let live = LivePublisher::new();
    let server = TelemetryServer::bind("127.0.0.1:0", live.clone()).expect("bind");
    let addr = server.addr();

    // Several /metrics and /progress clients scrape in parallel while
    // the run streams; every response must parse strictly and every
    // client's view must be monotone on its own timeline, regardless of
    // how requests interleave at the server.
    let spawn_metrics = |live: LivePublisher| {
        std::thread::spawn(move || {
            let mut last: BTreeMap<String, f64> = BTreeMap::new();
            let mut scrapes = 0u32;
            while !live.is_finished() {
                let body = http_get(addr, "/metrics");
                let exposition = prom::parse(&body).expect("exposition parses under contention");
                for family in &exposition.families {
                    if family.kind != "counter" || !family.name.starts_with("pipeline_flows") {
                        continue;
                    }
                    for sample in &family.samples {
                        let prev = last
                            .insert(family.name.clone(), sample.value)
                            .unwrap_or(0.0);
                        assert!(
                            sample.value >= prev,
                            "{} regressed under concurrent scrapes: {} < {prev}",
                            family.name,
                            sample.value,
                        );
                    }
                }
                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            scrapes
        })
    };
    let spawn_progress = |live: LivePublisher| {
        std::thread::spawn(move || {
            let (mut last_days, mut last_flows) = (0u64, 0u64);
            let mut scrapes = 0u32;
            while !live.is_finished() {
                let v: serde_json::Value = serde_json::from_str(&http_get(addr, "/progress"))
                    .expect("strict progress JSON under contention");
                let field = |key: &str| v.get(key).expect(key).as_u64().expect(key);
                let status = v.get("status").expect("status").as_str().expect("status");
                assert!(
                    matches!(status, "idle" | "running" | "done"),
                    "unknown status {status:?}"
                );
                let (days, total, flows) =
                    (field("days_completed"), field("days_total"), field("flows"));
                assert!(days <= total || total == 0, "{days} > {total}");
                assert!(days >= last_days, "days regressed: {days} < {last_days}");
                assert!(
                    flows >= last_flows,
                    "flows regressed: {flows} < {last_flows}"
                );
                (last_days, last_flows) = (days, flows);
                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            scrapes
        })
    };
    let metrics_pollers: Vec<_> = (0..3).map(|_| spawn_metrics(live.clone())).collect();
    let progress_pollers: Vec<_> = (0..3).map(|_| spawn_progress(live.clone())).collect();

    let run = Study::builder(tiny())
        .threads(2)
        .live(&live)
        .run()
        .expect("served run");

    let mut scrapes = 0u32;
    for poller in metrics_pollers {
        scrapes += poller.join().expect("metrics poller");
    }
    for poller in progress_pollers {
        scrapes += poller.join().expect("progress poller");
    }
    assert!(scrapes >= 6, "pollers barely ran: {scrapes} scrapes");

    // After the run every client sees the same settled endpoint state.
    let progress: serde_json::Value =
        serde_json::from_str(&http_get(addr, "/progress")).expect("final progress JSON");
    assert_eq!(
        progress.get("status").and_then(|s| s.as_str()),
        Some("done")
    );
    assert_eq!(
        progress.get("days_completed").and_then(|d| d.as_u64()),
        progress.get("days_total").and_then(|d| d.as_u64()),
    );
    let flows = run.study.metrics().counter("pipeline.flows_collected");
    assert_eq!(live.metrics().counter("pipeline.flows_collected"), flows);
}

#[test]
fn serving_is_observation_only_bit_identical_outputs() {
    let unserved = Study::builder(tiny()).threads(2).run().expect("clean run");
    let served = Study::builder(tiny())
        .threads(2)
        .serve("127.0.0.1:0")
        .run()
        .expect("served run");

    let a = unserved.into_study();
    let b = served.into_study();

    // Headline stats and normalization are bitwise equal.
    assert_eq!(a.headline(), b.headline());
    assert_eq!(a.norm_stats, b.norm_stats);

    // Every figure export byte-compares equal.
    let (ca, sa) = (&a.collector, &a.summary);
    let (cb, sb) = (&b.collector, &b.summary);
    assert_eq!(
        export::fig1_csv(&figures::figure1(ca, sa)),
        export::fig1_csv(&figures::figure1(cb, sb))
    );
    assert_eq!(
        export::fig4_csv(&figures::figure4(ca, sa)),
        export::fig4_csv(&figures::figure4(cb, sb))
    );
    assert_eq!(
        export::fig8_csv(&figures::figure8(ca, sa)),
        export::fig8_csv(&figures::figure8(cb, sb))
    );

    // Deterministic pipeline counters agree, and so does the manifest
    // config hash (the provenance fingerprint of the run's inputs).
    assert_eq!(
        a.metrics().counter("pipeline.flows_collected"),
        b.metrics().counter("pipeline.flows_collected")
    );
    let ma = report::run_manifest(&a, 2, None);
    let mb = report::run_manifest(&b, 2, None);
    assert_eq!(ma.config_hash_hex, mb.config_hash_hex);
    assert_eq!(ma.seed, mb.seed);
}
