//! End-to-end shape tests: run one small study and assert the paper's
//! qualitative claims, figure by figure. Thresholds are tolerant (the
//! test-scale population is ~400 students), but every directional claim
//! in the evaluation section is checked.

use analysis::figures::{self, Fig4Series};
use campussim::SimConfig;
use lockdown_core::Study;
use nettrace::time::{Day, Month, StudyCalendar};
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Study::builder(SimConfig::at_scale(0.06))
            .threads(8)
            .run()
            .unwrap()
            .into_study()
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn fig1_population_decline_and_unclassified_dominance() {
    let s = study();
    let f1 = figures::figure1(&s.collector, &s.summary);
    // "Before the shutdown, there was a peak … this dipped to a low …"
    let peak = *f1.total.iter().max().unwrap();
    let trough = *f1.total[47..].iter().min().unwrap();
    assert!(
        peak as f64 > 4.0 * trough as f64,
        "peak {peak} vs trough {trough}"
    );
    // Students left before classes went remote: the count on 3/29 is well
    // below the count on 3/10.
    assert!(f1.total[57] * 2 < f1.total[38]);
    // Mobile : laptop+desktop ≈ 1:1 pre-shutdown.
    let ratio = f1.per_bucket[0][10] as f64 / f1.per_bucket[1][10] as f64;
    assert!((0.6..1.6).contains(&ratio), "mobile/laptop ratio {ratio}");
    // "After the campus shutdown, the number of unclassified devices
    // dominates the number of IoT, mobile, and desktop/laptop devices."
    let d = 80usize; // late April
    assert!(f1.per_bucket[3][d] > f1.per_bucket[0][d]);
    assert!(f1.per_bucket[3][d] > f1.per_bucket[1][d]);
    assert!(f1.per_bucket[3][d] > f1.per_bucket[2][d]);
}

#[test]
fn fig2_means_skew_above_medians_for_iot_and_unclassified() {
    let s = study();
    let f2 = figures::figure2(&s.collector, &s.summary);
    // "some high-volume traffic devices skew the means … especially
    // noticeable for IoT and unclassified devices".
    for bucket in [2usize, 3] {
        let mut ratio_sum = 0.0;
        let mut n = 0;
        for d in 0..121 {
            if f2.median[bucket][d] > 0.0 {
                ratio_sum += f2.mean[bucket][d] / f2.median[bucket][d];
                n += 1;
            }
        }
        let avg_ratio = ratio_sum / n as f64;
        assert!(
            avg_ratio > 2.0,
            "bucket {bucket}: mean/median ratio {avg_ratio}"
        );
    }
    // Pre-shutdown, mobile devices carry the highest median volume.
    let d = 12usize;
    assert!(f2.median[0][d] > f2.median[2][d]); // mobile > iot
    assert!(f2.median[0][d] > f2.median[3][d]); // mobile > unclassified
}

#[test]
fn fig3_weekday_spike_earlier_weekends_stable() {
    let s = study();
    let f3 = figures::figure3(&s.collector, &s.summary);
    // Compare the pre-pandemic week (2/20) to a lock-down week (4/9).
    let pre = &f3.weeks[0];
    let post = &f3.weeks[2];
    // Weekday mornings (9:00–12:00 on the Thursday-first axis's weekday
    // positions) carry much more relative traffic during lock-down.
    let weekday_morning = |w: &Vec<f64>| {
        // Thu, Fri, Mon, Tue, Wed at offsets 0,1,4,5,6; hours 9..12.
        let mut v = Vec::new();
        for day_idx in [0usize, 1, 4, 5, 6] {
            for h in 9..12 {
                v.push(w[day_idx * 24 + h]);
            }
        }
        mean(&v)
    };
    let evening_peak = |w: &Vec<f64>| {
        let mut v = Vec::new();
        for day_idx in [0usize, 1, 4, 5, 6] {
            for h in 19..22 {
                v.push(w[day_idx * 24 + h]);
            }
        }
        mean(&v)
    };
    let pre_shape = weekday_morning(pre) / evening_peak(pre);
    let post_shape = weekday_morning(post) / evening_peak(post);
    assert!(
        post_shape > 1.3 * pre_shape,
        "morning/evening: pre {pre_shape:.2}, post {post_shape:.2}"
    );
    // "weekends are relatively unchanged": Saturday+Sunday profiles stay
    // within a modest factor, while weekday daytime more than doubles.
    let weekend_mean = |w: &Vec<f64>| {
        let mut v = Vec::new();
        for day_idx in [2usize, 3] {
            for h in 10..22 {
                v.push(w[day_idx * 24 + h]);
            }
        }
        mean(&v)
    };
    let weekend_change = weekend_mean(post) / weekend_mean(pre);
    let weekday_change = weekday_morning(post) / weekday_morning(pre);
    assert!(
        weekday_change > weekend_change,
        "weekday {weekday_change:.2} vs weekend {weekend_change:.2}"
    );
}

#[test]
fn fig4_international_elevated_during_break_and_term() {
    let s = study();
    let f4 = figures::figure4(&s.collector, &s.summary);
    let intl = &f4.series[Fig4Series::ALL
        .iter()
        .position(|x| *x == Fig4Series::IntlMobileDesktop)
        .unwrap()];
    let dom = &f4.series[Fig4Series::ALL
        .iter()
        .position(|x| *x == Fig4Series::DomesticMobileDesktop)
        .unwrap()];
    // "the volume of traffic increases for international students [during
    // break] but remains stable for domestic students" — compare each
    // group's break level to its own February baseline.
    let feb = 7..21usize;
    let brk = 50..58usize;
    let rel = |series: &[f64], range: std::ops::Range<usize>| mean(&series[range]);
    let intl_rise = rel(intl, brk.clone()) / rel(intl, feb.clone());
    let dom_rise = rel(dom, brk) / rel(dom, feb);
    assert!(
        intl_rise > dom_rise + 0.2,
        "break rise: intl {intl_rise:.2} dom {dom_rise:.2}"
    );
    // "stays elevated for international students for the duration of the
    // term relative to their domestic counterparts".
    let late = 95..115usize;
    let feb2 = 7..21usize;
    let intl_late = rel(intl, late.clone()) / rel(intl, feb2.clone());
    let dom_late = rel(dom, late) / rel(dom, feb2);
    assert!(
        intl_late > dom_late,
        "late-term: intl {intl_late:.2} dom {dom_late:.2}"
    );
}

#[test]
fn fig5_zoom_ramp_and_weekday_dominance() {
    let s = study();
    let f5 = figures::figure5(&s.collector, &s.summary);
    let feb_mean = mean(&f5.daily[0..29]);
    let term_mean = mean(&f5.daily[60..110]);
    assert!(
        term_mean > 10.0 * feb_mean.max(1.0),
        "feb {feb_mean:.0} vs term {term_mean:.0}"
    );
    // Weekend dips during the online term.
    let mut weekday = Vec::new();
    let mut weekend = Vec::new();
    for d in 60..120u16 {
        let v = f5.daily[d as usize];
        if Day(d).weekday().is_weekend() {
            weekend.push(v);
        } else {
            weekday.push(v);
        }
    }
    assert!(mean(&weekday) > 3.0 * mean(&weekend));
}

#[test]
fn fig6_social_media_trends() {
    let s = study();
    let f6 = figures::figure6(&s.collector, &s.summary);
    let med = |app: usize, sp: usize, m: usize| f6.boxes[app][sp][m].map(|b| b.median);
    // Facebook (6a): domestic decreases by May …
    let fb_dom_feb = med(0, 0, 0).expect("fb dom feb samples");
    let fb_dom_may = med(0, 0, 3).expect("fb dom may samples");
    assert!(fb_dom_may < fb_dom_feb, "{fb_dom_may} !< {fb_dom_feb}");
    // International groups are small at test scale (n ≈ 15–30), so the
    // strict rising-median claims live in figures_shape_large.rs (run
    // with `cargo test --release -- --ignored`); here we check the weak
    // form: pooled post-February months do not fall below February.
    let pooled = |app: usize| {
        let later: Vec<f64> = (1..4).filter_map(|m| med(app, 1, m)).collect();
        later.iter().sum::<f64>() / later.len() as f64
    };
    let fb_intl_feb = med(0, 1, 0).expect("fb intl feb");
    assert!(pooled(0) > 0.6 * fb_intl_feb, "FB intl collapsed post-Feb");
    let ig_intl_feb = med(1, 1, 0).expect("ig intl feb");
    assert!(pooled(1) > 0.6 * ig_intl_feb, "IG intl collapsed post-Feb");
    // TikTok (6c): international much less active than domestic, and the
    // domestic 3rd quartile keeps climbing Feb → April.
    let tt_dom_feb = med(2, 0, 0).expect("tt dom feb");
    let tt_intl_feb = med(2, 1, 0).expect("tt intl feb");
    assert!(tt_intl_feb < tt_dom_feb);
    let q3 = |m: usize| f6.boxes[2][0][m].map(|b| b.q3).expect("tt dom q3");
    assert!(q3(2) > q3(0), "TikTok domestic q3 should rise by April");
    // n grows over the months for TikTok domestic (adoption).
    let n = |m: usize| f6.boxes[2][0][m].map(|b| b.n).unwrap_or(0);
    assert!(n(3) > n(0), "TikTok n: Feb {} May {}", n(0), n(3));
}

#[test]
fn fig7_steam_spike_and_decline() {
    let s = study();
    let f7 = figures::figure7(&s.collector, &s.summary);
    let bytes = |sp: usize, m: usize| f7.bytes[sp][m].map(|b| b.median).expect("samples");
    // March spike for domestic, then a May well below March.
    assert!(bytes(0, 1) > 1.8 * bytes(0, 0));
    assert!(bytes(0, 3) < bytes(0, 1));
    // International's March/April levels exceed domestic's.
    assert!(bytes(1, 1) > bytes(0, 1) * 0.8);
    // Domestic connection medians do not rise over the study.
    let conns = |sp: usize, m: usize| f7.conns[sp][m].map(|b| b.median).expect("samples");
    assert!(conns(0, 3) <= conns(0, 0));
}

#[test]
fn fig8_switch_break_spike_trough_and_return() {
    let s = study();
    let f8 = figures::figure8(&s.collector, &s.summary);
    assert!(f8.n_switches > 0);
    let feb = mean(&f8.daily_ma[7..28]);
    let brk = mean(&f8.daily_ma[50..58]);
    let late_apr = mean(&f8.daily_ma[80..95]);
    let late_may = mean(&f8.daily_ma[100..120]);
    assert!(brk > 1.5 * feb, "break {brk:.0} vs feb {feb:.0}");
    assert!(late_apr < brk, "no trough: {late_apr:.0} vs {brk:.0}");
    assert!(
        late_may > late_apr,
        "no May rise: {late_may:.0} vs {late_apr:.0}"
    );
}

#[test]
fn headline_statistics_have_paper_shape() {
    let s = study();
    let h = s.headline();
    assert!(h.traffic_growth_feb_to_aprmay > 0.30);
    assert!(h.traffic_growth_feb_to_aprmay < 1.0);
    assert!(h.sites_growth > 0.15 && h.sites_growth < 0.6);
    let share = h.intl_devices as f64 / h.identified_devices.max(1) as f64;
    assert!((0.08..0.32).contains(&share), "intl share {share}");
    assert!(h.switches_pre > h.switches_post);
    // The visitor filter and calendar make peak:trough ≈ paper's ~6.4:1;
    // allow wide tolerance at test scale.
    let ratio = h.peak_active as f64 / h.trough_active.max(1) as f64;
    assert!((3.0..12.0).contains(&ratio), "peak/trough {ratio}");
}

#[test]
fn counterfactual_growth_is_positive_and_below_feb_growth() {
    // Paper: +58% vs February, +53% vs 2019 — the 2019 number is lower.
    let run = lockdown_core::Study::builder(SimConfig::at_scale(0.02))
        .threads(8)
        .with_counterfactual()
        .run()
        .unwrap();
    let growth = run.growth_vs_2019().expect("counterfactual requested");
    let study = run.into_study();
    let feb_growth = study.headline().traffic_growth_feb_to_aprmay;
    assert!(growth > 0.2, "vs-2019 growth {growth}");
    assert!(
        growth < feb_growth,
        "vs-2019 ({growth:.2}) should sit below vs-Feb ({feb_growth:.2})"
    );
}

#[test]
fn month_boundaries_used_by_figures_are_exact() {
    // Guard the calendar the figures depend on.
    assert_eq!(Month::Feb.first_day(), Day(0));
    assert_eq!(Month::May.first_day().label(), "2020-05-01");
    assert_eq!(StudyCalendar::figure3_weeks()[2].1.label(), "2020-04-09");
}
