#!/usr/bin/env sh
# Run the tier-1 gate (or another cargo subcommand) against the offline
# dependency stand-ins in offline/stubs — see offline/README.md.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cmd="${1:-test}"
shift 2>/dev/null || true

replace="--config source.crates-io.replace-with=\"offline-stubs\" \
--config source.offline-stubs.directory=\"$repo/offline/stubs\""

run() {
  # shellcheck disable=SC2086
  (cd "$repo" && cargo "$@" \
    --config 'source.crates-io.replace-with="offline-stubs"' \
    --config "source.offline-stubs.directory=\"$repo/offline/stubs\"")
}

case "$cmd" in
  test)
    run build --release "$@"
    run test -q "$@"
    ;;
  check)
    run check --workspace --all-targets "$@"
    ;;
  bench)
    run bench "$@"
    ;;
  *)
    run "$cmd" "$@"
    ;;
esac

# Don't leave stub versions pinned for networked builds.
rm -f "$repo/Cargo.lock"
