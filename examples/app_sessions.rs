//! Session-stitching demo (§5.2): watch the overlapping-flow merge and
//! the Facebook/Instagram disambiguation work on hand-built flows, then
//! on a day of simulated traffic.
//!
//! ```sh
//! cargo run --release --example app_sessions
//! ```

use appsig::{App, SessionStitcher};
use campussim::{CampusSim, SimConfig};
use dnslog::ResolverMap;
use nettrace::{DeviceId, Timestamp};

fn main() {
    // Part 1: the §5.2 example, literally. One user session touches
    // facebook.com, facebook.net and fbcdn.net with overlapping flows;
    // a second session also pulls instagram.com content.
    println!("== hand-built sessions ==");
    let t = |s: i64| Timestamp::from_secs(1_580_600_000 + s);
    let dev = DeviceId(1);
    let mut st = SessionStitcher::new();
    // Session A: pure Facebook, three overlapping flows.
    st.push(dev, App::Facebook, t(0), t(300), 4_000_000); // facebook.com
    st.push(dev, App::Facebook, t(20), t(280), 9_000_000); // fbcdn.net
    st.push(dev, App::Facebook, t(100), t(400), 1_000_000); // facebook.net
                                                            // Session B (20 minutes later): Facebook-family flows *plus* an
                                                            // Instagram-only domain → the whole session is Instagram.
    st.push(dev, App::Facebook, t(1600), t(1900), 2_000_000);
    st.push(dev, App::Instagram, t(1650), t(2000), 12_000_000);
    for s in st.finish() {
        println!(
            "  {} session: {:.1} min, {} flows, {:.1} MB",
            s.app,
            s.duration_hours() * 60.0,
            s.flows,
            s.bytes as f64 / 1e6
        );
    }

    // Part 2: a simulated day, stitched through the real pipeline path.
    println!();
    println!("== one simulated day ==");
    let sim = CampusSim::new(SimConfig::at_scale(0.01));
    let day = nettrace::time::Day(15);
    let trace = sim.day_trace(day);

    let mut resolver = ResolverMap::new();
    for q in &trace.dns {
        resolver.record(q);
    }
    let sigs = appsig::study_signatures();
    let mut cache = appsig::MatchCache::new();
    let mut st = SessionStitcher::new();
    let leases = dhcplog::LeaseIndex::build(&trace.leases, dhcplog::DEFAULT_MAX_LEASE_SECS);
    let mut norm = dhcplog::Normalizer::new(
        &leases,
        nettrace::ip::campus::residential_pool(),
        sim.config().anon_key,
    );
    let mut classified = 0u64;
    for f in &trace.flows {
        let Some(df) = norm.normalize(f) else {
            continue;
        };
        let lf = resolver.label(df);
        if let Some(app) = sigs.classify_flow(&lf, sim.directory().table(), &mut cache) {
            if matches!(app, App::Facebook | App::Instagram | App::TikTok) {
                st.push(df.device, app, df.ts, df.end(), df.total_bytes());
                classified += 1;
            }
        }
    }
    let sessions = st.finish();
    let mut by_app = std::collections::HashMap::new();
    for s in &sessions {
        let e = by_app.entry(s.app).or_insert((0usize, 0.0f64));
        e.0 += 1;
        e.1 += s.duration_hours();
    }
    println!(
        "  {classified} social flows stitched into {} sessions:",
        sessions.len()
    );
    let mut rows: Vec<_> = by_app.into_iter().collect();
    rows.sort_by_key(|(a, _)| *a);
    for (app, (n, hours)) in rows {
        println!(
            "  {app:<12} {n:>4} sessions, mean {:.1} min",
            hours * 60.0 / n as f64
        );
    }
}
