//! Quickstart: run a small version of the whole study and print the
//! headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use locked_in_lockdown::prelude::*;

fn main() {
    // 2% of the paper's campus: ~260 students, runs in a few seconds.
    let cfg = SimConfig::at_scale(0.02);
    println!(
        "simulating {} students over {} days…",
        cfg.num_students(),
        StudyCalendar::NUM_DAYS
    );

    let study = Study::builder(cfg)
        .threads(4)
        .run()
        .expect("study run")
        .into_study();
    let h = study.headline();

    println!();
    println!("peak active devices:      {}", h.peak_active);
    println!("trough during shutdown:   {}", h.trough_active);
    println!("post-shutdown devices:    {}", h.post_shutdown_devices);
    println!(
        "international share:      {:.1}% of {} identified",
        100.0 * h.intl_devices as f64 / h.identified_devices.max(1) as f64,
        h.identified_devices
    );
    println!(
        "traffic growth Feb→Apr/May: {:+.1}%  (paper: +58%)",
        100.0 * h.traffic_growth_feb_to_aprmay
    );
    println!(
        "distinct-sites growth:      {:+.1}%  (paper: +34%)",
        100.0 * h.sites_growth
    );
    println!(
        "Switches: {} pre-shutdown, {} post, {} new in Apr/May",
        h.switches_pre, h.switches_post, h.switches_new
    );

    let audit = study.classification_audit(100);
    println!(
        "device classification audit: {}/{} correct ({} conservative unknowns)",
        audit.correct, audit.sampled, audit.conservative_unknown
    );
}
