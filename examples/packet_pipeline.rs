//! Packet-level pipeline demo: render one simulated day into real
//! Ethernet/IPv4 frames, write a pcap file, read it back, run the
//! Zeek-style flow assembler over it, and verify the re-extracted flows
//! agree with the generator's flow records.
//!
//! This is the validation path for the substitution argument in
//! DESIGN.md: the full study synthesizes flow records directly, and this
//! binary demonstrates that the packet → assembler route produces the
//! same flows.
//!
//! ```sh
//! cargo run --release --example packet_pipeline
//! ```

use campussim::packets;
use campussim::{CampusSim, SimConfig};
use lockdown_obs::{record_assembler_stats, MetricsRegistry};
use nettrace::assembler::FlowAssembler;
use nettrace::pcap;
use nettrace::time::Day;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn main() {
    let sim = CampusSim::new(SimConfig::at_scale(0.003)); // ~40 students
    let day = Day(20);
    let mut trace = sim.day_trace(day);
    let all = trace.flows.len();
    // Rendering materializes real payload bytes; keep the demo to the
    // sub-2MB flows (the vast majority) so it stays light on memory.
    trace.flows.retain(|f| f.total_bytes() < 2_000_000);
    println!(
        "generated {all} flows for {} (rendering the {} under 2 MB)",
        day.label(),
        trace.flows.len()
    );

    // The device MAC for each flow's campus-side address on this day.
    let mac_by_ip: HashMap<Ipv4Addr, nettrace::MacAddr> = sim
        .population()
        .devices
        .iter()
        .map(|d| (sim.device_ip(d.index, day), d.mac))
        .collect();

    // Render to frames.
    let mut frames = Vec::new();
    for f in &trace.flows {
        let mac = mac_by_ip[&f.orig];
        frames.extend(packets::render_flow(f, mac));
    }
    frames.sort_by_key(|(ts, _)| *ts);
    println!("rendered {} packets", frames.len());

    // Write a real pcap file.
    let path = std::env::temp_dir().join("lockdown_day20.pcap");
    let file = std::fs::File::create(&path).expect("create pcap");
    let mut w = pcap::Writer::new(std::io::BufWriter::new(file)).expect("pcap header");
    for (ts, frame) in &frames {
        w.write(*ts, frame).expect("pcap record");
    }
    w.finish().expect("flush pcap");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!("wrote {} ({:.1} MB)", path.display(), size as f64 / 1e6);

    // Read it back and assemble flows.
    let file = std::fs::File::open(&path).expect("open pcap");
    let reader = pcap::Reader::new(std::io::BufReader::new(file)).expect("pcap header");
    let mut asm = FlowAssembler::with_defaults();
    let mut packets_read = 0u64;
    for rec in reader.records() {
        let rec = rec.expect("pcap record");
        if let Some(meta) = nettrace::packet::parse_frame(rec.ts, &rec.frame).expect("parse") {
            asm.push(&meta);
            packets_read += 1;
        }
    }
    let extracted = asm.flush();
    println!(
        "assembler extracted {} flows from {packets_read} packets",
        extracted.len()
    );

    // The assembler keeps its own completion/occupancy counters; publish
    // them through the observability layer to show the cause split.
    let reg = MetricsRegistry::new();
    record_assembler_stats(&reg, &asm.stats());
    print!("{}", reg.snapshot().to_text());

    // Compare byte totals per flow key.
    let mut expected: HashMap<_, (u64, u64)> = HashMap::new();
    for f in &trace.flows {
        let e = expected.entry(f.key()).or_insert((0, 0));
        e.0 += f.orig_bytes;
        e.1 += f.resp_bytes;
    }
    let mut got: HashMap<_, (u64, u64)> = HashMap::new();
    for f in &extracted {
        let e = got.entry(f.key()).or_insert((0, 0));
        e.0 += f.orig_bytes;
        e.1 += f.resp_bytes;
    }
    let matching = expected
        .iter()
        .filter(|(k, v)| got.get(k) == Some(v))
        .count();
    println!(
        "byte-exact key matches: {matching}/{} ({:.2}%)",
        expected.len(),
        100.0 * matching as f64 / expected.len() as f64
    );
    std::fs::remove_file(&path).ok();
}
