//! Sub-population segmentation demo (§4.2): geolocate February
//! destinations, compute byte-weighted geographic midpoints, classify
//! devices as domestic or international, and compare against the
//! generator's ground truth — including the conservative
//! misclassification the paper discusses.
//!
//! ```sh
//! cargo run --release --example subpopulations
//! ```

use analysis::collect::{PipelineCtx, StudyCollector};
use campussim::{CampusSim, SimConfig};
use geoloc::{in_united_states, SubPop};
use lockdown_core::{process_day, PipelineOptions};
use nettrace::time::Day;

fn main() {
    let sim = CampusSim::new(SimConfig::at_scale(0.02));
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();

    // The classifier uses February traffic only.
    for d in 0..29u16 {
        let day = Day(d);
        let trace = sim.day_trace(day);
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key);
        process_day(opts, &mut collector, &trace);
    }

    let truth: std::collections::HashMap<_, _> = sim
        .population()
        .devices
        .iter()
        .map(|d| (d.id, sim.population().students[d.owner as usize].subpop))
        .collect();

    let mut tp = 0; // true international classified international
    let mut fn_ = 0; // true international classified domestic (conservative)
    let mut fp = 0; // true domestic classified international
    let mut tn = 0;
    let mut examples = Vec::new();
    for (dev, acc) in &collector.midpoints {
        let Some((lat, lon)) = acc.midpoint() else {
            continue;
        };
        let measured = if in_united_states(lat, lon) {
            SubPop::Domestic
        } else {
            SubPop::International
        };
        let t = truth[dev];
        match (t, measured) {
            (SubPop::International, SubPop::International) => tp += 1,
            (SubPop::International, SubPop::Domestic) => {
                fn_ += 1;
                if examples.len() < 3 {
                    examples.push((*dev, lat, lon));
                }
            }
            (SubPop::Domestic, SubPop::International) => fp += 1,
            (SubPop::Domestic, SubPop::Domestic) => tn += 1,
        }
    }

    println!("midpoint classification vs ground truth (February evidence):");
    println!("  international → international: {tp}");
    println!("  international → domestic:      {fn_}   (the paper's conservatism)");
    println!("  domestic → international:      {fp}");
    println!("  domestic → domestic:           {tn}");
    let measured_share = (tp + fp) as f64 / (tp + fp + fn_ + tn) as f64;
    let true_share = (tp + fn_) as f64 / (tp + fp + fn_ + tn) as f64;
    println!(
        "  measured international share: {:.1}%  (true share {:.1}%; paper measured 18% vs ~25% enrollment)",
        100.0 * measured_share,
        100.0 * true_share
    );
    println!();
    println!("examples of conservatively-misclassified internationals (midpoint inside the US):");
    for (dev, lat, lon) in examples {
        println!("  {dev}: midpoint ({lat:.1}, {lon:.1})");
    }
}
