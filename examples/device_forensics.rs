//! Device-classification forensics: run the classifier over a simulated
//! population, compare against ground truth, and show *why* devices end
//! up in each bucket — the §3 heuristics at work.
//!
//! ```sh
//! cargo run --release --example device_forensics
//! ```

use analysis::collect::{PipelineCtx, StudyCollector};
use campussim::{CampusSim, SimConfig};
use devclass::{DeviceType, FigureBucket};
use lockdown_core::{process_day, PipelineOptions};
use nettrace::time::Day;
use std::collections::HashMap;

fn main() {
    let sim = CampusSim::new(SimConfig::at_scale(0.01));
    let ctx = PipelineCtx::study();
    let mut collector = StudyCollector::new();

    // Two weeks of February traffic is plenty of classification evidence.
    for d in 0..14u16 {
        let day = Day(d);
        let trace = sim.day_trace(day);
        let opts = PipelineOptions::new(&ctx, sim.directory().table(), day, sim.config().anon_key);
        process_day(opts, &mut collector, &trace);
    }

    let classifier = devclass::Classifier::new();
    let truth: HashMap<_, _> = sim
        .population()
        .devices
        .iter()
        .map(|d| (d.id, d.kind))
        .collect();

    let mut confusion: HashMap<(DeviceType, FigureBucket), usize> = HashMap::new();
    let mut evidence_counts = [0usize; 4]; // ua, iot, console, oui
    for (dev, profile) in &collector.profiles {
        let Some(kind) = truth.get(dev) else { continue };
        let predicted = classifier.classify(profile);
        *confusion
            .entry((kind.true_type(), predicted.figure_bucket()))
            .or_default() += 1;
        if devclass::useragent::vote(&profile.user_agents).is_some() {
            evidence_counts[0] += 1;
        } else if profile.iot.is_iot(devclass::SAIDI_THRESHOLD) {
            evidence_counts[1] += 1;
        } else if profile.total_bytes > 0
            && profile.console_fraction() >= devclass::SWITCH_THRESHOLD
        {
            evidence_counts[2] += 1;
        } else if !profile.locally_administered && profile.oui.is_some() {
            evidence_counts[3] += 1;
        }
    }

    println!("evidence that decided each device (first heuristic to fire):");
    println!("  User-Agent vote:        {}", evidence_counts[0]);
    println!("  IoT backend fraction:   {}", evidence_counts[1]);
    println!("  console traffic:        {}", evidence_counts[2]);
    println!("  OUI vendor (at most):   {}", evidence_counts[3]);
    println!();
    println!("confusion (truth → predicted bucket):");
    let mut rows: Vec<_> = confusion.into_iter().collect();
    rows.sort_by_key(|((t, p), _)| (format!("{t:?}"), format!("{p:?}")));
    for ((t, p), n) in rows {
        println!("  {:<16} → {:<16} {n}", t.name(), p.name());
    }

    // A concrete Switch detection example.
    let switches = collector.switch_detect.switches();
    println!();
    println!(
        "Switch detector: {} devices exceed the 50% Nintendo-traffic threshold",
        switches.len()
    );
    let true_switches = sim
        .population()
        .devices
        .iter()
        .filter(|d| d.kind == campussim::TrueKind::Switch)
        .filter(|d| sim.population().device_present(d, Day(0)))
        .count();
    println!("ground truth Switches present in February: {true_switches}");
}
