//! # locked-in-lockdown — umbrella crate
//!
//! Re-exports the whole reproduction of *Locked-In during Lock-Down:
//! Undergraduate Life on the Internet in a Pandemic* (IMC '21) behind one
//! dependency. See the README for the architecture and DESIGN.md for the
//! paper-to-module map.
//!
//! ```no_run
//! use locked_in_lockdown::prelude::*;
//!
//! # fn main() -> Result<(), StudyError> {
//! let study = Study::builder(SimConfig::at_scale(0.02))
//!     .threads(4)
//!     .run()?
//!     .into_study();
//! let stats = study.headline();
//! println!("post-shutdown devices: {}", stats.post_shutdown_devices);
//! println!("flows assembled: {}", study.metrics().counter("pipeline.flows_in"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use appsig;
pub use campussim;
pub use devclass;
pub use dhcplog;
pub use dnslog;
pub use geoloc;
pub use lockdown_core;
pub use lockdown_obs;
pub use nettrace;

/// Convenient imports for the common workflow.
pub mod prelude {
    pub use analysis::collect::{PipelineCtx, StudyCollector};
    pub use analysis::figures::StudySummary;
    pub use campussim::{CampusSim, FaultProfile, SimConfig};
    pub use lockdown_core::{
        report, DayFailure, DegradedReport, Study, StudyBuilder, StudyError, StudyRun,
    };
    pub use lockdown_obs::{
        LivePublisher, MetricsRegistry, MetricsSnapshot, NullObserver, Progress, RunObserver,
        TelemetryServer, TextProgress,
    };
    pub use nettrace::time::{Day, Month, Phase, StudyCalendar};
}
